//! Consistent-hash ring mapping cache fingerprints to cluster nodes.
//!
//! Every request is content-addressed by its cache fingerprint (the
//! FNV-1a hash `CacheKey::of` computes over the canonical request
//! parts), so sharding is just a stable map from that 64-bit hash to a
//! node address. The ring places a fixed number of virtual points per
//! node on the u64 circle — each point the FNV-1a hash of
//! `"{addr}#{replica}"` — and assigns a key to the first point at or
//! clockwise of the key's hash. The construction uses nothing but the
//! node address strings and FNV, so every process that agrees on the
//! member list agrees on every assignment, with no coordination.
//!
//! Virtual points keep the load spread even and, more importantly,
//! bound churn: growing from N to N+1 nodes moves only the keys whose
//! arc the new node's points claim — in expectation 1/(N+1) of the
//! keyspace — which the property tests below check on sampled keys.
//! Each point is finished with a SplitMix64 mix of the FNV hash:
//! FNV-1a alone has weak trailing-byte diffusion, so the 64 replica
//! points of one node would otherwise cluster into a handful of arcs.

use crate::cache::fnv1a;
use crate::fault::splitmix64;

/// Virtual points placed on the ring per node. 64 keeps the per-node
/// load within a few percent of even for small clusters while keeping
/// ring construction and lookup (binary search over `n * 64` points)
/// trivially cheap.
pub const POINTS_PER_NODE: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// A consistent-hash ring over a fixed set of node addresses.
///
/// Deterministic by construction: two rings built from the same set of
/// addresses (in any order) produce identical assignments in any
/// process — there is no random seed and no insertion-order
/// dependence.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, node-index)` sorted by point; ties broken by the
    /// node's position in the sorted `nodes` list so duplicates of a
    /// point (vanishingly rare but possible) still resolve identically
    /// everywhere.
    points: Vec<(u64, usize)>,
    /// Sorted, deduplicated node addresses.
    nodes: Vec<String>,
}

impl HashRing {
    /// Builds a ring over `nodes` (addresses such as
    /// `"127.0.0.1:4600"`). Duplicates are dropped; order is
    /// irrelevant. An empty list yields an empty ring for which
    /// [`HashRing::node_for`] returns `None`.
    pub fn new<S: AsRef<str>>(nodes: &[S]) -> Self {
        let mut sorted: Vec<String> = nodes.iter().map(|n| n.as_ref().to_string()).collect();
        sorted.sort();
        sorted.dedup();
        let mut points = Vec::with_capacity(sorted.len() * POINTS_PER_NODE);
        for (idx, node) in sorted.iter().enumerate() {
            for replica in 0..POINTS_PER_NODE {
                let mut h = fnv1a(FNV_OFFSET, node.as_bytes());
                h = fnv1a(h, b"#");
                h = fnv1a(h, replica.to_string().as_bytes());
                // FNV-1a alone clusters points whose inputs differ only
                // in the trailing replica digits (the final `*prime`
                // spreads a last-byte difference across at most ~2^48 of
                // the circle), which collapses the effective point count
                // and wrecks the churn bound — finish with a full-width
                // mixer so the 64 points land independently.
                points.push((splitmix64(h), idx));
            }
        }
        points.sort();
        HashRing {
            points,
            nodes: sorted,
        }
    }

    /// Number of distinct nodes on the ring.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node addresses on the ring, sorted.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// The node owning `key_hash`: the first virtual point at or
    /// clockwise of the hash, wrapping at the top of the u64 circle.
    /// `None` only for an empty ring. Total: every u64 maps to exactly
    /// one node.
    pub fn node_for(&self, key_hash: u64) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let idx = match self.points.binary_search(&(key_hash, 0)) {
            Ok(i) => i,
            Err(i) => {
                if i == self.points.len() {
                    0 // wrap: past the last point, the first point owns it
                } else {
                    i
                }
            }
        };
        Some(&self.nodes[self.points[idx].1])
    }

    /// The first `rf` *distinct* nodes at or clockwise of `key_hash`,
    /// deduplicated by node, in ring order: the owner first, then its
    /// up-ring successors. This is both the replica set for the key
    /// (replication factor `rf`) and the preference list a router
    /// walks when the owner is down. `rf` larger than the membership
    /// yields every node exactly once; `rf = 0` yields nothing.
    ///
    /// Removing a node from the ring only deletes that node's virtual
    /// points, so the relative order of the survivors' points — and
    /// therefore every preference list over the survivors — is
    /// unchanged (the churn property the tests below pin).
    pub fn preference_list(&self, key_hash: u64, rf: usize) -> Vec<&str> {
        let want = rf.min(self.nodes.len());
        let mut out: Vec<&str> = Vec::with_capacity(want);
        if self.points.is_empty() || want == 0 {
            return out;
        }
        let start = match self.points.binary_search(&(key_hash, 0)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        };
        for off in 0..self.points.len() {
            let (_, node_idx) = self.points[(start + off) % self.points.len()];
            let node = self.nodes[node_idx].as_str();
            if !out.contains(&node) {
                out.push(node);
            }
            if out.len() == want {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::splitmix64;

    fn sample_keys(n: u64) -> impl Iterator<Item = u64> {
        (0..n).map(|i| splitmix64(0x5eed_0000 + i))
    }

    #[test]
    fn empty_ring_maps_nothing() {
        let ring = HashRing::new::<&str>(&[]);
        assert!(ring.is_empty());
        assert_eq!(ring.node_for(42), None);
        assert!(ring.preference_list(42, 3).is_empty());
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = HashRing::new(&["a:1"]);
        for key in sample_keys(500) {
            assert_eq!(ring.node_for(key), Some("a:1"));
        }
    }

    /// Determinism across processes: the assignment depends only on
    /// the member set, not on insertion order, duplicates, or any
    /// per-process state. (Cross-*process* determinism follows because
    /// the construction touches nothing but the address bytes, FNV-1a,
    /// and the SplitMix64 finisher — all build-independent.)
    #[test]
    fn assignment_is_deterministic_and_order_independent() {
        let forward = HashRing::new(&["a:1", "b:2", "c:3"]);
        let shuffled = HashRing::new(&["c:3", "a:1", "b:2", "a:1"]);
        assert_eq!(forward.len(), 3);
        assert_eq!(shuffled.len(), 3);
        for key in sample_keys(2000) {
            assert_eq!(forward.node_for(key), shuffled.node_for(key));
        }
        // A clone is trivially identical too (the router and every
        // node hold independently-built rings of the same members).
        let rebuilt = HashRing::new(forward.nodes());
        for key in sample_keys(500) {
            assert_eq!(forward.node_for(key), rebuilt.node_for(key));
        }
    }

    /// Totality: every sampled fingerprint (and the u64 extremes) maps
    /// to exactly one node of the member set.
    #[test]
    fn every_fingerprint_maps_to_a_member() {
        let ring = HashRing::new(&["a:1", "b:2", "c:3", "d:4", "e:5"]);
        for key in sample_keys(5000).chain([0, 1, u64::MAX - 1, u64::MAX]) {
            let node = ring.node_for(key).expect("total");
            assert!(ring.nodes().iter().any(|n| n == node));
        }
    }

    /// Churn bound: growing N → N+1 remaps ≤ ~1/(N+1) of sampled keys
    /// (2x slack for virtual-point variance at these sample sizes),
    /// and never remaps a key *between* surviving nodes — a moved key
    /// always lands on the new node.
    #[test]
    fn adding_a_node_remaps_at_most_its_fair_share() {
        for n in 2usize..=6 {
            let before: Vec<String> = (0..n).map(|i| format!("node-{i}:470{i}")).collect();
            let mut after = before.clone();
            after.push(format!("node-{n}:470{n}"));
            let old = HashRing::new(&before);
            let new = HashRing::new(&after);
            let samples = 4000u64;
            let mut moved = 0u64;
            for key in sample_keys(samples) {
                let was = old.node_for(key).unwrap();
                let now = new.node_for(key).unwrap();
                if was != now {
                    moved += 1;
                    assert_eq!(
                        now,
                        format!("node-{n}:470{n}"),
                        "a remapped key must move to the new node, never between survivors"
                    );
                }
            }
            let fair = samples as f64 / (n as f64 + 1.0);
            assert!(
                (moved as f64) <= 2.0 * fair,
                "N={n}: moved {moved} of {samples}, fair share {fair:.0}"
            );
            assert!(moved > 0, "N={n}: the new node must take some keys");
        }
    }

    /// The preference list starts at the owner, covers every node
    /// exactly once when asked for all of them, and is deterministic.
    #[test]
    fn preference_list_covers_all_nodes_starting_at_owner() {
        let ring = HashRing::new(&["a:1", "b:2", "c:3", "d:4"]);
        for key in sample_keys(200) {
            let prefs = ring.preference_list(key, ring.len());
            assert_eq!(prefs.len(), 4);
            assert_eq!(prefs[0], ring.node_for(key).unwrap());
            let mut sorted = prefs.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "no duplicates");
        }
    }

    /// An `rf`-bounded preference list is exactly the first `rf`
    /// entries of the full walk — the replica set for a key is a
    /// prefix of the failover order, so the node a router falls over
    /// to *is* the replica that holds the key.
    #[test]
    fn bounded_preference_list_is_a_prefix_of_the_full_walk() {
        let ring = HashRing::new(&["a:1", "b:2", "c:3", "d:4", "e:5"]);
        for key in sample_keys(200) {
            let full = ring.preference_list(key, ring.len());
            for rf in 0..=7 {
                let bounded = ring.preference_list(key, rf);
                assert_eq!(bounded.len(), rf.min(ring.len()));
                assert_eq!(bounded[..], full[..rf.min(ring.len())]);
            }
        }
    }

    // The same three invariants as properties over *arbitrary* member
    // sets (size, addresses, and keys all generated), not the fixed
    // corpora above.
    use proptest::prelude::*;

    /// `n` distinct addresses derived from `salt` — the address bytes
    /// vary per case so no hash alignment is baked in.
    fn members(n: usize, salt: u64) -> Vec<String> {
        (0..n as u64)
            .map(|i| {
                format!(
                    "10.{}.{}.{}:{}",
                    salt % 200,
                    splitmix64(salt ^ i) % 256,
                    i,
                    4600 + i
                )
            })
            .collect()
    }

    proptest! {
        /// Totality, determinism, and order independence for any
        /// member set: every key maps to a member, a reshuffled (and
        /// duplicated) build produces the identical assignment, and
        /// the preference list covers all nodes starting at the owner.
        #[test]
        fn any_member_set_is_total_and_order_independent(
            n in 1usize..8,
            salt in 0u64..(1 << 32),
            key in 0u64..u64::MAX,
        ) {
            let nodes = members(n, salt);
            let ring = HashRing::new(&nodes);
            let owner = ring.node_for(key).expect("total").to_string();
            prop_assert!(nodes.contains(&owner));
            let mut shuffled: Vec<String> = nodes.iter().rev().cloned().collect();
            shuffled.push(nodes[0].clone());
            prop_assert_eq!(
                HashRing::new(&shuffled).node_for(key),
                Some(owner.as_str())
            );
            let prefs = ring.preference_list(key, n);
            prop_assert_eq!(prefs.len(), n);
            prop_assert_eq!(prefs[0], owner.as_str());
        }

        /// For any membership, key, and replication factor: the
        /// preference list has exactly `min(rf, members)` *distinct*
        /// entries, starts at the owner, and two independently built
        /// rings (shuffled members) agree on it entry-for-entry —
        /// every caller (node, router, client) derives the same
        /// replica set with no coordination.
        #[test]
        fn any_preference_list_is_distinct_bounded_and_deterministic(
            n in 1usize..8,
            rf in 0usize..10,
            salt in 0u64..(1 << 32),
            key in 0u64..u64::MAX,
        ) {
            let nodes = members(n, salt);
            let ring = HashRing::new(&nodes);
            let prefs = ring.preference_list(key, rf);
            prop_assert_eq!(prefs.len(), rf.min(n));
            let mut distinct: Vec<&str> = prefs.clone();
            distinct.sort();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), prefs.len(), "entries must be distinct");
            if rf > 0 {
                prop_assert_eq!(prefs[0], ring.node_for(key).unwrap());
            }
            let mut shuffled: Vec<String> = nodes.iter().rev().cloned().collect();
            shuffled.push(nodes[0].clone());
            let other = HashRing::new(&shuffled);
            prop_assert_eq!(other.preference_list(key, rf), prefs);
        }

        /// Removal churn bound: deleting one node only deletes that
        /// node's virtual points, so the survivors' preference order is
        /// untouched — the shrunken ring's list equals the old full
        /// walk with the removed node filtered out. Only slots the dead
        /// node held are reassigned; no key moves *between* survivors.
        #[test]
        fn removing_a_node_only_reassigns_its_own_slots(
            n in 2usize..8,
            rf in 1usize..5,
            salt in 0u64..(1 << 32),
            key in 0u64..u64::MAX,
        ) {
            let nodes = members(n, salt);
            let removed = nodes[(salt % n as u64) as usize].clone();
            let survivors: Vec<String> =
                nodes.iter().filter(|m| **m != removed).cloned().collect();
            let old = HashRing::new(&nodes);
            let new = HashRing::new(&survivors);
            let expected: Vec<&str> = old
                .preference_list(key, n)
                .into_iter()
                .filter(|m| *m != removed)
                .take(rf.min(survivors.len()))
                .collect();
            prop_assert_eq!(new.preference_list(key, rf), expected);
        }

        /// Churn bound for any membership: growing N → N+1 remaps at
        /// most ~1/(N+1) of sampled keys (2.5x slack for virtual-point
        /// variance), and every moved key lands on the newcomer.
        #[test]
        fn any_growth_step_remaps_at_most_a_fair_share(
            n in 1usize..7,
            salt in 0u64..(1 << 32),
        ) {
            let before = members(n, salt);
            let newcomer = format!("joined-{}:9999", salt % 1000);
            let mut after = before.clone();
            after.push(newcomer.clone());
            let old = HashRing::new(&before);
            let new = HashRing::new(&after);
            let samples = 2000u64;
            let mut moved = 0u64;
            for key in (0..samples).map(|i| splitmix64(salt.rotate_left(17) ^ i)) {
                let was = old.node_for(key).unwrap();
                let now = new.node_for(key).unwrap();
                if was != now {
                    moved += 1;
                    prop_assert_eq!(now, newcomer.as_str(),
                        "a moved key must land on the newcomer");
                }
            }
            let fair = samples as f64 / (n as f64 + 1.0);
            prop_assert!(
                (moved as f64) <= 2.5 * fair,
                "moved {} of {}, fair share {:.0}", moved, samples, fair
            );
        }
    }
}
