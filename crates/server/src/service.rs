//! Request execution: parse → certify/infer/flows → respond, with the
//! result cache and metrics wired through.
//!
//! A [`Service`] is shared (behind `Arc`) between every worker and
//! connection; all interior state is synchronized (the cache behind a
//! `Mutex`, metrics lock-free).

use std::collections::HashMap;
use std::fmt::Display;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use secflow_analyze::AnalysisReport;
use secflow_cert::{emit_certificate, show_linear_class, show_two_class, validate_certificate};
use secflow_core::{certify, denning_certify, infer_binding, FlowGraph, StaticBinding};
use secflow_lang::span::LineIndex;
use secflow_lang::{parse, Program, Severity};
use secflow_lattice::{Extended, Lattice, LinearScheme, Scheme, TwoPoint, TwoPointScheme};
use secflow_logic::prove;
use secflow_runtime::{explore_with, pexplore_with, ExploreLimits};

use crate::cache::{CacheKey, CachedResult, ResultCache};
use crate::deadline::CancelToken;
use crate::fault::{Faults, NoFaults};
use crate::hints::{HintStore, DEFAULT_HINT_BYTES};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::peer::{
    ClusterConfig, ClusterState, DEFAULT_MAX_HOPS, DEFAULT_PEER_TIMEOUT_MS, MAX_SYNC_PAGE,
};
use crate::persist::{encode_record, DurableStore};
use crate::protocol::{ErrorKind, Op, Request, Response};

/// Work limits enforced per request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Hard cap on statements certified per request; a request's own
    /// `fuel` can only lower it.
    pub max_fuel: u64,
    /// Hard cap on source bytes (checked before parsing).
    pub max_source_bytes: usize,
    /// Deadline applied when a request carries no `timeout_ms` (0 =
    /// none).
    pub default_timeout_ms: u64,
    /// Hard cap on any requested `timeout_ms` (0 = uncapped).
    pub max_timeout_ms: u64,
    /// Hard cap on `explore` abstract states; a request's own
    /// `max_states` can only lower it.
    pub max_explore_states: usize,
    /// Hard cap on `threads` for `explore`/`lint` state-space search; a
    /// larger request is clamped (not rejected).
    pub max_threads: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_fuel: 1_000_000,
            max_source_bytes: 8 << 20,
            default_timeout_ms: 30_000,
            max_timeout_ms: 300_000,
            max_explore_states: 1_000_000,
            max_threads: 8,
        }
    }
}

impl Limits {
    /// Effective timeout for `req` in milliseconds: the request's
    /// `timeout_ms` (or the configured default), clamped by
    /// `max_timeout_ms`. `0` disables the deadline.
    pub fn effective_timeout_ms(&self, req: &Request) -> u64 {
        let requested = req.timeout_ms.unwrap_or(self.default_timeout_ms);
        if requested == 0 || self.max_timeout_ms == 0 {
            requested
        } else {
            requested.min(self.max_timeout_ms)
        }
    }

    /// Effective worker-thread count for `req`: the request's `threads`
    /// (default 1, and 0 means 1), clamped by `max_threads`. The second
    /// component reports whether clamping actually lowered the request.
    pub fn effective_threads(&self, req: &Request) -> (usize, bool) {
        let requested = req.threads.unwrap_or(1).max(1);
        let cap = self.max_threads.max(1) as u64;
        if requested > cap {
            (cap as usize, true)
        } else {
            (requested as usize, false)
        }
    }
}

/// The certification service: cache + metrics + limits. Stateless with
/// respect to individual requests, so any worker can execute any job.
pub struct Service {
    cache: Mutex<ResultCache>,
    /// Live counters, readable at any time (the `stats` op snapshots
    /// them).
    pub metrics: Metrics,
    limits: Limits,
    /// Crash-safe journal/snapshot of the cache, when serving with
    /// `--cache-dir` (None = memory-only, the default).
    persist: Option<Mutex<DurableStore>>,
    /// Single-flight table: cache fingerprint (canonical key text) →
    /// the one in-progress computation for it. Concurrent identical
    /// requests attach here as waiters instead of recomputing, so a
    /// stampede of N identical `certify` requests costs one
    /// exploration. See [`Flight`] for the lock-order rules.
    inflight: Mutex<HashMap<String, Arc<Flight>>>,
    /// Cluster topology, when this service is one shard of (or a
    /// router over) an N-node cluster (None = standalone, the
    /// default). See [`crate::peer`].
    cluster: Option<ClusterState>,
    /// Hinted handoff queue: replica writes owed to peers that were
    /// DOWN when the primary tried to push them. Drained by
    /// [`health_tick`](Self::health_tick) once the peer recovers.
    hints: HintStore,
}

/// One in-progress computation that concurrent identical requests wait
/// on. The leader publishes `Some(result)` on success, or `None` when
/// it has nothing shareable (its deadline expired — timeouts depend on
/// the deadline, not the key — or it panicked); waiters seeing `None`
/// retry, and one of them becomes the next leader.
///
/// Lock order: `Service::inflight` and `Flight::slot` are leaf locks —
/// neither is ever held while computing, or while taking the cache or
/// persist locks — so they extend the existing one-directional
/// persist → cache order without cycles.
struct Flight {
    slot: Mutex<Option<Option<CachedResult>>>,
    cv: Condvar,
}

/// What a waiter got out of [`Flight::wait`].
enum FlightWait {
    /// The leader published a shareable result.
    Published(CachedResult),
    /// The leader finished without a shareable result; retry (the next
    /// attempt will find the cache filled or become the leader).
    Retry,
    /// The waiter's own deadline expired first.
    Expired,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Blocks until the leader publishes or `token` expires. Polls the
    /// token at a coarse interval: cancellation is cooperative
    /// everywhere else in the service too.
    fn wait(&self, token: &CancelToken) -> FlightWait {
        let Ok(mut slot) = self.slot.lock() else {
            return FlightWait::Retry;
        };
        loop {
            match slot.take() {
                Some(published) => {
                    // Put it back for the other waiters.
                    *slot = Some(published.clone());
                    self.cv.notify_all();
                    return match published {
                        Some(result) => FlightWait::Published(result),
                        None => FlightWait::Retry,
                    };
                }
                None => {
                    if token.expired() {
                        return FlightWait::Expired;
                    }
                    match self.cv.wait_timeout(slot, Duration::from_millis(20)) {
                        Ok((guard, _)) => slot = guard,
                        Err(_) => return FlightWait::Retry,
                    }
                }
            }
        }
    }
}

/// Removes the leader's entry from the in-flight table and publishes
/// its outcome on drop — which runs during unwind too, so a panicking
/// leader releases its waiters (as `Retry`) instead of stranding them.
struct FlightGuard<'a> {
    service: &'a Service,
    canon: String,
    flight: Arc<Flight>,
    result: Option<CachedResult>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if let Ok(mut inflight) = self.service.inflight.lock() {
            inflight.remove(&self.canon);
        }
        if let Ok(mut slot) = self.flight.slot.lock() {
            *slot = Some(self.result.take());
        }
        self.flight.cv.notify_all();
    }
}

/// Who a request is in its single-flight group.
enum FlightRole<'a> {
    /// First in: computes, then publishes through the guard. `None`
    /// when coalescing is unavailable (poisoned table lock) — compute
    /// solo, exactly as before this mechanism existed.
    Leader(Option<FlightGuard<'a>>),
    /// Another identical request is already computing; wait on it.
    Waiter(Arc<Flight>),
}

/// Either response fields to report, or a categorized failure.
type Outcome = Result<Vec<(String, Json)>, (ErrorKind, String)>;

impl Service {
    /// A service with a result cache of `cache_capacity` entries.
    pub fn new(cache_capacity: usize, limits: Limits) -> Service {
        Service {
            cache: Mutex::new(ResultCache::new(cache_capacity)),
            metrics: Metrics::new(),
            limits,
            persist: None,
            inflight: Mutex::new(HashMap::new()),
            cluster: None,
            hints: HintStore::new(DEFAULT_HINT_BYTES),
        }
    }

    /// A service whose cache is backed by a durable store: entries the
    /// store recovered from disk are replayed into the cache (in disk
    /// order, so later duplicates win and LRU recency is preserved),
    /// and every newly computed result is journaled before it can be
    /// evicted.
    pub fn with_persist(cache_capacity: usize, limits: Limits, mut store: DurableStore) -> Service {
        let mut cache = ResultCache::new(cache_capacity);
        for entry in store.drain_recovered() {
            cache.put(&entry.key, entry.value);
        }
        store.set_entries_recovered(cache.len() as u64);
        Service {
            cache: Mutex::new(cache),
            metrics: Metrics::new(),
            limits,
            persist: Some(Mutex::new(store)),
            inflight: Mutex::new(HashMap::new()),
            cluster: None,
            hints: HintStore::new(DEFAULT_HINT_BYTES),
        }
    }

    /// Makes this service one member of (or, with no
    /// [`self_addr`](ClusterConfig::self_addr), a router over) a
    /// cluster: requests whose fingerprint another node owns are
    /// forwarded there instead of computed locally, and `peer-sync`
    /// pages the cache to warm-starting peers.
    pub fn with_cluster(self, config: ClusterConfig) -> Service {
        self.with_cluster_faults(config, Arc::new(NoFaults))
    }

    /// [`with_cluster`](Self::with_cluster) with chaos hooks wired into
    /// the outbound peer-call path (per-peer `partition` drop rules from
    /// a [`crate::fault::FaultPlan`]).
    pub fn with_cluster_faults(
        mut self,
        config: ClusterConfig,
        faults: Arc<dyn Faults>,
    ) -> Service {
        let state = ClusterState::with_faults(config, faults);
        self.metrics
            .cluster_hash_ring_size
            .store(state.ring().len() as u64, Relaxed);
        self.cluster = Some(state);
        self
    }

    /// Replaces the hint queue (the serve loop passes a disk-backed
    /// store when the node runs with both `--cache-dir` and a cluster).
    pub fn with_hint_store(mut self, hints: HintStore) -> Service {
        self.hints = hints;
        self
    }

    /// A snapshot of the durable store's counters, when persistence is
    /// enabled.
    pub fn persist_stats(&self) -> Option<crate::persist::PersistStats> {
        let store = self.persist.as_ref()?.lock().ok()?;
        Some(store.stats())
    }

    /// The configured limits.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Number of results currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().map(|c| c.len()).unwrap_or(0)
    }

    /// Counts a received request (the serve loops parse lines
    /// themselves and then call [`execute`](Self::execute)).
    pub fn note_request(&self) {
        Metrics::bump(&self.metrics.requests);
    }

    /// Full path for one protocol line: parse, execute, render the
    /// response line. Counts the request.
    pub fn handle_line(&self, line: &str) -> String {
        self.note_request();
        match Request::parse(line) {
            Ok(req) => self.execute(&req),
            Err((id, message)) => {
                Metrics::bump(&self.metrics.errors);
                Response::error(id.as_ref(), ErrorKind::Protocol, &message).into_line()
            }
        }
    }

    /// Builds the cancellation token for `req` from its effective
    /// timeout. The serve loop shares this token with the pool watchdog.
    pub fn cancel_token(&self, req: &Request) -> CancelToken {
        CancelToken::after_ms(self.limits.effective_timeout_ms(req))
    }

    /// Executes an already-parsed request (the caller counted it).
    pub fn execute(&self, req: &Request) -> String {
        let token = self.cancel_token(req);
        self.execute_with_cancel(req, &token)
    }

    /// Executes an already-parsed request under an externally-owned
    /// cancellation token (so the connection or watchdog can revoke the
    /// work).
    pub fn execute_with_cancel(&self, req: &Request, token: &CancelToken) -> String {
        let start = Instant::now();
        let line = match req.op {
            Op::Stats => {
                let mut fields = self.metrics.snapshot_fields();
                // Splice the live cluster view (digest, hint backlog,
                // per-peer health) into the counters' cluster object.
                if let Some((_, Json::Obj(cluster))) =
                    fields.iter_mut().find(|(k, _)| k == "cluster")
                {
                    cluster.push((
                        "shard_digest".to_string(),
                        Json::Str(self.shard_digest_hex()),
                    ));
                    cluster.push((
                        "hints_pending".to_string(),
                        Json::Num(self.hints.len() as f64),
                    ));
                    if let Some(state) = &self.cluster {
                        let peers: Vec<Json> = state
                            .health()
                            .snapshot()
                            .into_iter()
                            .map(|r| {
                                Json::Obj(vec![
                                    ("addr".to_string(), Json::Str(r.addr)),
                                    ("health".to_string(), Json::Str(r.health.name().to_string())),
                                    (
                                        "last_seen_ms".to_string(),
                                        r.last_seen_ms
                                            .map(|ms| Json::Num(ms as f64))
                                            .unwrap_or(Json::Null),
                                    ),
                                ])
                            })
                            .collect();
                        cluster.push(("peers".to_string(), Json::Arr(peers)));
                    }
                }
                let mut resp = Response::ok(req.id.as_ref(), Op::Stats)
                    .fields(&fields)
                    .field("cache_entries", Json::Num(self.cache_len() as f64));
                if let Some(stats) = self.persist_stats() {
                    resp = resp.field("persist", Json::Obj(stats.fields()));
                }
                resp.into_line()
            }
            Op::Shutdown => Response::ok(req.id.as_ref(), Op::Shutdown).into_line(),
            Op::Forward => self.forward_op(req, start, token),
            Op::PeerSync => self.peer_sync_op(req),
            Op::Ping => self.ping_op(req),
            Op::Replicate => self.replicate_op(req),
            Op::Repair => self.repair_op(req),
            Op::Certify | Op::Infer | Op::Flows | Op::Lint | Op::Explore | Op::Checkproof => {
                self.compute_cached(req, start, token, 0)
            }
        };
        self.metrics.record_latency(start.elapsed());
        line
    }

    fn op_counter(&self, op: Op) -> Option<&std::sync::atomic::AtomicU64> {
        match op {
            Op::Certify => Some(&self.metrics.certify),
            Op::Infer => Some(&self.metrics.infer),
            Op::Flows => Some(&self.metrics.flows),
            Op::Lint => Some(&self.metrics.lint),
            Op::Explore => Some(&self.metrics.explore),
            Op::Checkproof => Some(&self.metrics.checkproof),
            _ => None,
        }
    }

    /// The `forward` peer op: unwrap the inner request line and answer
    /// it exactly as a direct request would be answered (so relayed
    /// replies are byte-compatible), carrying the sender's hop count
    /// into the routing decision as the anti-loop budget.
    fn forward_op(&self, req: &Request, start: Instant, token: &CancelToken) -> String {
        let inner_line = req.req.as_deref().unwrap_or_default();
        let inner = match Request::parse(inner_line) {
            Ok(inner) => inner,
            Err((id, message)) => {
                Metrics::bump(&self.metrics.errors);
                return Response::error(
                    id.as_ref(),
                    ErrorKind::Protocol,
                    &format!("bad forwarded request: {message}"),
                )
                .into_line();
            }
        };
        match inner.op {
            Op::Certify | Op::Infer | Op::Flows | Op::Lint | Op::Explore | Op::Checkproof => {
                // Loop guard: a sender following the protocol stops
                // forwarding at the hop budget, so a count past it means
                // a routing loop or a non-conforming peer. Refuse with a
                // structured (permanent) error instead of computing — the
                // sender's relay path treats the refusal as "try the next
                // candidate, else compute locally", so availability is
                // preserved while the loop is broken.
                let budget = self
                    .cluster
                    .as_ref()
                    .map(|c| c.max_hops())
                    .unwrap_or(DEFAULT_MAX_HOPS);
                if req.hops > budget {
                    Metrics::bump(&self.metrics.cluster_forward_hop_exhausted);
                    Metrics::bump(&self.metrics.errors);
                    return Response::error(
                        inner.id.as_ref(),
                        ErrorKind::MaxHopsExhausted,
                        &format!("forward chain exceeded the hop budget of {budget}"),
                    )
                    .into_line();
                }
                self.compute_cached(&inner, start, token, req.hops)
            }
            // Control ops must not ride inside `forward`: a wrapped
            // `shutdown` would let any peer kill the node, and a
            // wrapped `forward` would defeat the hop budget.
            _ => {
                Metrics::bump(&self.metrics.errors);
                Response::error(
                    inner.id.as_ref(),
                    ErrorKind::Protocol,
                    &format!("op `{}` cannot be forwarded", inner.op.name()),
                )
                .into_line()
            }
        }
    }

    /// The `peer-sync` op: one page of the cache as journal record
    /// payloads, oldest (least recently used) first — the same order
    /// and encoding compaction writes to disk, shipped over the wire.
    fn peer_sync_op(&self, req: &Request) -> String {
        Metrics::bump(&self.metrics.cluster_peer_syncs);
        let cursor = req.cursor.unwrap_or(0).min(usize::MAX as u64) as usize;
        let limit = req.limit.unwrap_or(256).clamp(1, MAX_SYNC_PAGE) as usize;
        let all = match self.cache.lock() {
            Ok(cache) => cache.entries(),
            Err(_) => Vec::new(),
        };
        let total = all.len();
        let page: Vec<Json> = all
            .into_iter()
            .skip(cursor)
            .take(limit)
            .map(|(hash, canon, value)| {
                let payload = encode_record(hash, &canon, &value);
                Json::Str(String::from_utf8_lossy(&payload).into_owned())
            })
            .collect();
        let next = cursor.saturating_add(page.len());
        Response::ok(req.id.as_ref(), Op::PeerSync)
            .field("count", Json::Num(page.len() as f64))
            .field("total", Json::Num(total as f64))
            .field("next", Json::Num(next as f64))
            .field("done", Json::Bool(next >= total))
            .field("entries", Json::Arr(page))
            .into_line()
    }

    /// Installs an entry that arrived over the verified peer-sync path
    /// (`peer-sync` pull, `replicate` push, or a drained hint — the
    /// caller verified it): into the cache and, when persistence is on,
    /// the local journal — so a synced node is durable in its own
    /// right. Idempotent: an entry already present (exact canon match)
    /// is left untouched and returns `false`, so repeated repairs and
    /// replayed hints never grow the journal or perturb LRU order.
    /// No compute-path metrics move; the work happened elsewhere.
    pub(crate) fn install_synced(&self, key: &CacheKey, value: CachedResult) -> bool {
        match self.cache.lock() {
            Ok(mut cache) => {
                if cache.contains(key) {
                    return false;
                }
                cache.put(key, value.clone());
            }
            Err(_) => return false,
        }
        self.journal(key, &value);
        true
    }

    /// XOR of every cached entry's fingerprint: the order-independent
    /// shard digest anti-entropy compares across nodes (see
    /// [`crate::cache::ResultCache::digest`]).
    pub fn shard_digest(&self) -> u64 {
        self.cache.lock().map(|c| c.digest()).unwrap_or(0)
    }

    fn shard_digest_hex(&self) -> String {
        format!("{:016x}", self.shard_digest())
    }

    /// Hints currently queued for unreachable replicas.
    pub fn hints_pending(&self) -> usize {
        self.hints.len()
    }

    /// The `ping` op: liveness plus the shard digest, so one round trip
    /// both feeds the failure detector and lets `repair` compare shards.
    fn ping_op(&self, req: &Request) -> String {
        Response::ok(req.id.as_ref(), Op::Ping)
            .field("digest", Json::Str(self.shard_digest_hex()))
            .field("entries", Json::Num(self.cache_len() as f64))
            .into_line()
    }

    /// The `replicate` op: install one pushed journal record, verified
    /// exactly like a `peer-sync` entry (same gate, same forgery
    /// rejection). Replies `installed:false` for an entry already held
    /// — the push was redundant, not wrong.
    fn replicate_op(&self, req: &Request) -> String {
        let payload = req.payload.as_deref().unwrap_or_default();
        match crate::peer::verified_entry(payload) {
            Some((key, value)) => {
                let installed = self.install_synced(&key, value);
                if installed {
                    Metrics::bump(&self.metrics.cluster_replica_installs);
                }
                Response::ok(req.id.as_ref(), Op::Replicate)
                    .field("installed", Json::Bool(installed))
                    .into_line()
            }
            None => {
                Metrics::bump(&self.metrics.errors);
                Response::error(
                    req.id.as_ref(),
                    ErrorKind::Protocol,
                    "replicate payload failed verification",
                )
                .into_line()
            }
        }
    }

    /// The `repair` op: anti-entropy against one peer. Compares shard
    /// digests first (one `ping` round trip); only a mismatch pays for
    /// a full `peer-sync` pull, so repeated repair of a converged pair
    /// is O(1) and idempotent. Pull-based: this node ends up holding a
    /// superset of the peer's entries — run from both sides (as the
    /// `secflow repair` subcommand does) to converge a pair.
    fn repair_op(&self, req: &Request) -> String {
        let peer = req.peer.as_deref().unwrap_or_default();
        let timeout = self
            .cluster
            .as_ref()
            .map(|c| c.peer_timeout())
            .unwrap_or(Duration::from_millis(DEFAULT_PEER_TIMEOUT_MS));
        let ping_line = Request::new(Op::Ping, "").to_line();
        let reply = match &self.cluster {
            Some(cluster) => cluster.call_peer(peer, &ping_line),
            None => crate::peer::call(peer, &ping_line, timeout),
        };
        let reply = match reply {
            Ok(reply) => reply,
            Err(e) => {
                Metrics::bump(&self.metrics.errors);
                return Response::error(
                    req.id.as_ref(),
                    ErrorKind::Internal,
                    &format!("repair: peer {peer} unreachable: {e}"),
                )
                .into_line();
            }
        };
        let peer_digest = Json::parse(&reply)
            .ok()
            .and_then(|v| v.get("digest").and_then(Json::as_str).map(str::to_string));
        let local = self.shard_digest_hex();
        if peer_digest.as_deref() == Some(local.as_str()) {
            return Response::ok(req.id.as_ref(), Op::Repair)
                .field("synced", Json::Bool(false))
                .field("pages", Json::Num(0.0))
                .field("installed", Json::Num(0.0))
                .field("digest", Json::Str(local))
                .field("digest_match", Json::Bool(true))
                .into_line();
        }
        match crate::peer::sync_from_peer(self, peer, timeout) {
            Ok(report) => {
                if report.entries_installed > 0 {
                    Metrics::bump(&self.metrics.cluster_repairs);
                }
                let after = self.shard_digest_hex();
                let matched = peer_digest.as_deref() == Some(after.as_str());
                Response::ok(req.id.as_ref(), Op::Repair)
                    .field("synced", Json::Bool(true))
                    .field("pages", Json::Num(report.pages as f64))
                    .field("installed", Json::Num(report.entries_installed as f64))
                    .field("rejected", Json::Num(report.entries_rejected as f64))
                    .field("digest", Json::Str(after))
                    .field("digest_match", Json::Bool(matched))
                    .into_line()
            }
            Err(e) => {
                Metrics::bump(&self.metrics.errors);
                Response::error(
                    req.id.as_ref(),
                    ErrorKind::Internal,
                    &format!("repair: sync from {peer} failed: {e}"),
                )
                .into_line()
            }
        }
    }

    /// One beat of the background health loop: probe every non-UP peer
    /// whose jittered deadline has passed (the call outcome feeds the
    /// failure detector, so a healed peer flips back to UP here), then
    /// drain queued hints to any peer the detector now trusts.
    pub fn health_tick(&self) {
        let Some(cluster) = &self.cluster else { return };
        let ping_line = Request::new(Op::Ping, "").to_line();
        for addr in cluster.health().due_probes() {
            let _ = cluster.call_peer(&addr, &ping_line);
        }
        for addr in self.hints.peers_with_hints() {
            if cluster.health().is_down(&addr) {
                continue;
            }
            let mut failed = false;
            for payload in self.hints.take_for(&addr) {
                if failed {
                    let dropped = self.hints.queue(&addr, &payload);
                    self.metrics
                        .cluster_hints_dropped
                        .fetch_add(dropped, Relaxed);
                    continue;
                }
                let mut push = Request::new(Op::Replicate, "");
                push.payload = Some(payload.clone());
                match cluster.call_peer(&addr, &push.to_line()) {
                    Ok(reply) => {
                        let ok = Json::parse(&reply)
                            .ok()
                            .and_then(|v| v.get("ok").and_then(Json::as_bool))
                            == Some(true);
                        if ok {
                            Metrics::bump(&self.metrics.cluster_hints_delivered);
                        } else {
                            // The peer refused the payload (permanent):
                            // re-queueing would loop forever. Count it
                            // dropped; `repair` is the backstop.
                            self.metrics.cluster_hints_dropped.fetch_add(1, Relaxed);
                        }
                    }
                    Err(_) => {
                        // Peer gone again mid-drain: keep the remainder
                        // queued (without re-counting them as queued).
                        failed = true;
                        let dropped = self.hints.queue(&addr, &payload);
                        self.metrics
                            .cluster_hints_dropped
                            .fetch_add(dropped, Relaxed);
                    }
                }
            }
        }
    }

    /// Pushes a freshly cached entry to its other replicas
    /// (synchronous, best-effort). A DOWN replica — or one that fails
    /// the push — gets a hint instead, so the write is owed rather than
    /// lost. No-op at `replication` 1 or standalone.
    fn replicate_out(&self, key: &CacheKey, value: &CachedResult) {
        let Some(cluster) = &self.cluster else { return };
        let targets = cluster.replica_targets(key.hash);
        if targets.is_empty() {
            return;
        }
        let payload =
            String::from_utf8_lossy(&encode_record(key.hash, &key.canon, value)).into_owned();
        for addr in targets {
            if cluster.health().is_down(&addr) {
                self.queue_hint(&addr, &payload);
                continue;
            }
            let mut push = Request::new(Op::Replicate, "");
            push.payload = Some(payload.clone());
            let delivered = match cluster.call_peer(&addr, &push.to_line()) {
                Ok(reply) => {
                    Json::parse(&reply)
                        .ok()
                        .and_then(|v| v.get("ok").and_then(Json::as_bool))
                        == Some(true)
                }
                Err(_) => false,
            };
            if delivered {
                Metrics::bump(&self.metrics.cluster_replicas_sent);
            } else {
                self.queue_hint(&addr, &payload);
            }
        }
    }

    fn queue_hint(&self, addr: &str, payload: &str) {
        Metrics::bump(&self.metrics.cluster_hints_queued);
        let dropped = self.hints.queue(addr, payload);
        self.metrics
            .cluster_hints_dropped
            .fetch_add(dropped, Relaxed);
    }

    fn compute_cached(
        &self,
        req: &Request,
        start: Instant,
        token: &CancelToken,
        hops: u64,
    ) -> String {
        if let Some(counter) = self.op_counter(req.op) {
            Metrics::bump(counter);
        }
        let effective_fuel = req.fuel.unwrap_or(u64::MAX).min(self.limits.max_fuel);
        let (threads, clamped) = self.limits.effective_threads(req);
        let uses_threads = matches!(req.op, Op::Explore | Op::Lint);
        if uses_threads && clamped {
            Metrics::bump(&self.metrics.threads_clamped);
        }
        // `threads` is echoed per-response (like `cached`/`us`), never
        // spliced into the cached payload: a parallel request and a
        // sequential one share a cache entry.
        let extra: Vec<(String, Json)> = if uses_threads && req.threads.is_some() {
            vec![("threads".to_string(), Json::Num(threads as f64))]
        } else {
            Vec::new()
        };
        // `timeout_ms` is deliberately NOT part of the key: the
        // computation it names is identical, and a slow request should
        // be able to hit a result cached by a patient one. `threads`
        // is excluded for the same reason — the parallel search merges
        // commutatively, so the answer is thread-count-independent.
        let key = cache_key(req, effective_fuel);
        let mut guard = loop {
            if let Ok(mut cache) = self.cache.lock() {
                if let Some(hit) = cache.get(&key) {
                    Metrics::bump(&self.metrics.cache_hits);
                    if req.op == Op::Checkproof {
                        // The key is dominated by the certificate text,
                        // so this is a hit by content digest.
                        Metrics::bump(&self.metrics.checkproof_cache_hits);
                    }
                    if !hit.ok {
                        Metrics::bump(&self.metrics.errors);
                    }
                    return finish_line(req, &hit, true, start, &extra);
                }
            }
            // Single flight: if an identical computation is already in
            // progress, wait for its result instead of recomputing.
            match self.join_flight(&key) {
                FlightRole::Leader(guard) => break guard,
                FlightRole::Waiter(flight) => match flight.wait(token) {
                    FlightWait::Published(result) => {
                        Metrics::bump(&self.metrics.coalesced_hits);
                        if req.op == Op::Checkproof {
                            Metrics::bump(&self.metrics.checkproof_cache_hits);
                        }
                        if !result.ok {
                            Metrics::bump(&self.metrics.errors);
                        }
                        // Reported as `cached`: from this request's
                        // point of view the answer came from shared
                        // state, not its own computation.
                        return finish_line(req, &result, true, start, &extra);
                    }
                    // The leader had nothing shareable (timeout or
                    // panic): go around again — the cache may have been
                    // filled meanwhile, or this request leads.
                    FlightWait::Retry => continue,
                    FlightWait::Expired => {
                        Metrics::bump(&self.metrics.errors);
                        Metrics::bump(&self.metrics.timeouts);
                        let (kind, message) = self.timeout_error(req);
                        let result = CachedResult {
                            ok: false,
                            fields: vec![(
                                "error".to_string(),
                                Json::Obj(vec![
                                    ("kind".to_string(), Json::Str(kind.name().to_string())),
                                    ("message".to_string(), Json::Str(message)),
                                ]),
                            )],
                        };
                        return finish_line(req, &result, false, start, &extra);
                    }
                },
            }
        };
        // Not cached and not in flight here: if another node owns this
        // fingerprint, forward instead of computing — the owner's
        // single-flight table then coalesces every node's copy of this
        // request into one computation cluster-wide. Falls through to
        // local computation when the cluster is unreachable, so a dead
        // owner costs latency, never availability.
        if let Some(line) = self.forward_to_owner(req, &key, hops, &mut guard) {
            return line;
        }
        Metrics::bump(&self.metrics.cache_misses);

        let outcome = self.compute(req, effective_fuel, threads, token);
        let timed_out = matches!(outcome, Err((ErrorKind::Timeout, _)));
        let result = match outcome {
            Ok(fields) => {
                // Certificate bookkeeping happens only on this fresh
                // path — cached and warm-started replies re-serve the
                // stored certificate without touching the prover, and
                // the counters prove it.
                if let Some(cert) = fields
                    .iter()
                    .find(|(k, _)| k == "certificate")
                    .and_then(|(_, v)| v.as_str())
                {
                    Metrics::bump(&self.metrics.proofs_emitted);
                    self.metrics
                        .proof_bytes_total
                        .fetch_add(cert.len() as u64, Relaxed);
                }
                if req.op == Op::Checkproof {
                    let valid = fields
                        .iter()
                        .find(|(k, _)| k == "valid")
                        .and_then(|(_, v)| v.as_bool());
                    if valid == Some(true) {
                        Metrics::bump(&self.metrics.checkproof_valid);
                    } else {
                        Metrics::bump(&self.metrics.checkproof_rejected);
                    }
                }
                CachedResult { ok: true, fields }
            }
            Err((kind, message)) => {
                Metrics::bump(&self.metrics.errors);
                if kind == ErrorKind::Timeout {
                    Metrics::bump(&self.metrics.timeouts);
                }
                CachedResult {
                    ok: false,
                    fields: vec![(
                        "error".to_string(),
                        Json::Obj(vec![
                            ("kind".to_string(), Json::Str(kind.name().to_string())),
                            ("message".to_string(), Json::Str(message)),
                        ]),
                    )],
                }
            }
        };
        // Parse/binding/fuel outcomes are deterministic in the key, so
        // both successes and failures are cacheable. Timeouts are NOT:
        // they depend on the deadline, not the key — and for the same
        // reason a timeout is never published to the flight's waiters,
        // whose own deadlines may still have room.
        if !timed_out {
            if let Ok(mut cache) = self.cache.lock() {
                cache.put(&key, result.clone());
            }
            self.journal(&key, &result);
            if let Some(guard) = guard.as_mut() {
                guard.result = Some(result.clone());
            }
            // Push the fresh entry to its other replicas (no-op unless
            // `replication` ≥ 2). Deliberately after publishing to the
            // flight — local waiters never block on replica sockets.
            self.replicate_out(&key, &result);
        }
        drop(guard);
        finish_line(req, &result, false, start, &extra)
    }

    /// Joins the single-flight group for `key`: the first request in
    /// becomes the leader (and gets the publish-on-drop guard), every
    /// later identical request becomes a waiter on the same flight. A
    /// poisoned table lock degrades to solo computation.
    fn join_flight(&self, key: &CacheKey) -> FlightRole<'_> {
        let Ok(mut inflight) = self.inflight.lock() else {
            return FlightRole::Leader(None);
        };
        if let Some(flight) = inflight.get(&key.canon) {
            return FlightRole::Waiter(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::new());
        inflight.insert(key.canon.clone(), Arc::clone(&flight));
        FlightRole::Leader(Some(FlightGuard {
            service: self,
            canon: key.canon.clone(),
            flight,
            result: None,
        }))
    }

    /// Tries to forward `req` to the node owning its fingerprint.
    /// `Some(line)` is the relayed reply (byte-for-byte what the owner
    /// answered); `None` means "compute locally" — this node owns the
    /// key, there is no cluster, the hop budget is spent, or every
    /// candidate peer was unreachable.
    fn forward_to_owner(
        &self,
        req: &Request,
        key: &CacheKey,
        hops: u64,
        guard: &mut Option<FlightGuard<'_>>,
    ) -> Option<String> {
        let cluster = self.cluster.as_ref()?;
        if hops >= cluster.max_hops() {
            return None;
        }
        let candidates = cluster.route(key.hash);
        if candidates.is_empty() {
            return None;
        }
        let mut outer = Request::new(Op::Forward, "");
        outer.req = Some(req.to_line());
        outer.hops = hops + 1;
        let outer_line = outer.to_line();
        for addr in candidates {
            let Ok(reply) = cluster.call_peer(&addr, &outer_line) else {
                continue; // peer down: next candidate, else compute here
            };
            let Some((result, relayed_cached)) = relayed_result(&reply, req) else {
                // Not an inner-shaped reply — the peer rejected the
                // forward itself (overloaded, draining): next candidate.
                continue;
            };
            Metrics::bump(&self.metrics.cluster_forwards);
            if relayed_cached {
                Metrics::bump(&self.metrics.cluster_forward_hits);
            }
            if !result.ok {
                Metrics::bump(&self.metrics.errors);
            }
            // Deterministic outcomes are cacheable on this side of the
            // wire too; timeouts depend on the deadline, not the key,
            // so they are relayed but never stored or published (the
            // same rule local computation follows).
            if !is_timeout(&result) {
                if let Ok(mut cache) = self.cache.lock() {
                    cache.put(key, result.clone());
                }
                self.journal(key, &result);
                if let Some(guard) = guard.as_mut() {
                    guard.result = Some(result);
                }
            }
            return Some(reply);
        }
        None
    }

    /// Appends a freshly cached result to the durable journal, then
    /// compacts if the journal outgrew its budget. The cache lock is
    /// never held while this runs; compaction takes persist → cache, so
    /// nested lock order is one-directional and deadlock-free. Disk
    /// errors are counted in [`crate::persist::PersistStats`] — serving
    /// continues memory-only.
    fn journal(&self, key: &CacheKey, value: &CachedResult) {
        let Some(persist) = &self.persist else { return };
        let Ok(mut store) = persist.lock() else {
            return;
        };
        let _ = store.append(key, value);
        if store.wants_compaction() {
            let live = match self.cache.lock() {
                Ok(cache) => cache.entries(),
                Err(_) => return,
            };
            let _ = store.compact(&live);
        }
    }

    fn timeout_error(&self, req: &Request) -> (ErrorKind, String) {
        (
            ErrorKind::Timeout,
            format!(
                "deadline of {} ms exceeded",
                self.limits.effective_timeout_ms(req)
            ),
        )
    }

    fn compute(
        &self,
        req: &Request,
        effective_fuel: u64,
        threads: usize,
        token: &CancelToken,
    ) -> Outcome {
        if req.source.len() > self.limits.max_source_bytes {
            return Err((
                ErrorKind::Fuel,
                format!(
                    "source is {} bytes; limit is {}",
                    req.source.len(),
                    self.limits.max_source_bytes
                ),
            ));
        }
        if token.expired() {
            return Err(self.timeout_error(req));
        }
        let program = parse(&req.source).map_err(|d| (ErrorKind::Parse, d.render(&req.source)))?;
        // Parsing itself is not cancellable, so re-check right after:
        // a deep program can blow the whole deadline in the parser.
        if token.expired() {
            return Err(self.timeout_error(req));
        }
        let statements = program.statement_count() as u64;
        if statements > effective_fuel {
            return Err((
                ErrorKind::Fuel,
                format!("program has {statements} statements; fuel allows {effective_fuel}"),
            ));
        }
        let stop = || token.expired();
        if req.op == Op::Lint {
            // Lint needs no binding or lattice; it is still routed
            // through `compute_cached`, so results are cached and
            // counted like every other program-level op.
            let report = secflow_analyze::analyze_threads(&program, threads, &stop);
            if report.cancelled {
                return Err(self.timeout_error(req));
            }
            if report.pass_panics > 0 {
                self.metrics
                    .pass_panics
                    .fetch_add(report.pass_panics as u64, Relaxed);
            }
            return Ok(lint_fields(&report, &req.source));
        }
        if req.op == Op::Explore {
            return self.explore(req, &program, threads, &stop);
        }
        if req.op == Op::Checkproof {
            // The validator never re-runs Theorem 1 search: it decodes
            // the certificate and replays the checker's side conditions.
            // Rejections are verdicts (ok:true, valid:false), not
            // protocol errors — a bad certificate is a result, not a
            // malfunction.
            return Ok(checkproof_fields(
                &req.source,
                req.cert.as_deref().unwrap_or_default(),
            ));
        }
        match req.lattice.as_str() {
            "two" => run_op(
                req,
                &program,
                &TwoPointScheme,
                &parse_two_class,
                &show_two_class,
            ),
            spec => {
                let n = spec
                    .strip_prefix("linear:")
                    .and_then(|s| s.parse::<u32>().ok())
                    .ok_or_else(|| {
                        (
                            ErrorKind::Binding,
                            format!("bad lattice `{spec}` (expected `two` or `linear:N`)"),
                        )
                    })?;
                let scheme = LinearScheme::new(n).ok_or_else(|| {
                    (
                        ErrorKind::Binding,
                        "linear lattice needs N >= 1".to_string(),
                    )
                })?;
                let parse_class = move |s: &str| parse_linear_class(&scheme, s);
                run_op(req, &program, &scheme, &parse_class, &show_linear_class)
            }
        }
    }

    /// The `explore` op: exhaustive interleaving exploration under the
    /// request's (capped) state budget and deadline, on `threads`
    /// work-stealing workers (1 = the sequential explorer).
    fn explore(
        &self,
        req: &Request,
        program: &Program,
        threads: usize,
        should_stop: &(dyn Fn() -> bool + Sync),
    ) -> Outcome {
        let mut inputs = Vec::new();
        for (name, value) in &req.inputs {
            let id = program
                .symbols
                .lookup(name)
                .ok_or_else(|| (ErrorKind::Binding, format!("`{name}` is not declared")))?;
            inputs.push((id, *value));
        }
        let default = ExploreLimits::default();
        let base = ExploreLimits {
            max_states: req
                .max_states
                .map(|n| n.min(usize::MAX as u64) as usize)
                .unwrap_or(default.max_states)
                .min(self.limits.max_explore_states),
            max_depth: default.max_depth,
            ..default
        };
        // Persistent-set-only reduction on both engines: the parallel
        // explorer cannot use sleep sets (they are traversal-order
        // dependent), and the cached payload must not depend on the
        // requested thread count, so the sequential path matches it.
        let limits = if req.por {
            base.persistent_only()
        } else {
            base.without_por()
        };
        let begin = Instant::now();
        let report = if threads > 1 {
            pexplore_with(program, &inputs, limits, threads, should_stop)
        } else {
            explore_with(program, &inputs, limits, should_stop)
        };
        self.metrics
            .explore_states
            .fetch_add(report.states as u64, Relaxed);
        self.metrics
            .explore_pruned
            .fetch_add(report.states_pruned as u64, Relaxed);
        self.metrics.explore_us.fetch_add(
            begin.elapsed().as_micros().min(u64::MAX as u128) as u64,
            Relaxed,
        );
        if report.cancelled {
            return Err(self.timeout_error(req));
        }
        Ok(vec![
            (
                "outcomes".to_string(),
                Json::Num(report.outcomes.len() as f64),
            ),
            ("deadlocks".to_string(), Json::Num(report.deadlocks as f64)),
            ("faults".to_string(), Json::Num(report.faults as f64)),
            ("states".to_string(), Json::Num(report.states as f64)),
            (
                "states_pruned".to_string(),
                Json::Num(report.states_pruned as f64),
            ),
            ("por".to_string(), Json::Bool(req.por)),
            ("truncated".to_string(), Json::Bool(report.truncated)),
        ])
    }
}

fn parse_two_class(s: &str) -> Result<TwoPoint, String> {
    match s.to_ascii_lowercase().as_str() {
        "low" | "l" => Ok(TwoPoint::Low),
        "high" | "h" => Ok(TwoPoint::High),
        other => Err(format!("unknown class `{other}` (low | high)")),
    }
}

fn parse_linear_class(scheme: &LinearScheme, s: &str) -> Result<secflow_lattice::Linear, String> {
    let top = scheme.levels() - 1;
    let k: u32 = s
        .trim_start_matches(['L', 'l'])
        .parse()
        .map_err(|_| format!("unknown class `{s}` (0..={top})"))?;
    scheme
        .level(k)
        .ok_or_else(|| format!("level {k} out of range (0..={top})"))
}

/// The cluster routing fingerprint of `req`: the same FNV-1a hash the
/// result cache keys on, computed with the default limits' fuel cap so
/// every router, client, and node — whatever its own serving limits —
/// maps a given request to the same ring position.
pub fn route_fingerprint(req: &Request) -> u64 {
    let fuel = req.fuel.unwrap_or(u64::MAX).min(Limits::default().max_fuel);
    cache_key(req, fuel).hash
}

/// Interprets a peer's reply to a `forward` as the inner request's
/// result: `Some((payload, was_cached))` when the reply is an
/// inner-shaped response (its `op` echoes the forwarded op), `None`
/// when the peer answered about the forward itself (a rejection).
/// The payload is the reply minus the per-response envelope
/// (`id`/`ok`/`op`/`cached`/`us`/`threads`) — exactly what the local
/// cache stores, so a later hit replays it byte-identically.
fn relayed_result(reply: &str, req: &Request) -> Option<(CachedResult, bool)> {
    let v = Json::parse(reply).ok()?;
    if v.get("op").and_then(Json::as_str) != Some(req.op.name()) {
        return None;
    }
    let ok = v.get("ok").and_then(Json::as_bool)?;
    let cached = v.get("cached").and_then(Json::as_bool).unwrap_or(false);
    let fields: Vec<(String, Json)> = v
        .as_obj()?
        .iter()
        .filter(|(k, _)| !matches!(k.as_str(), "id" | "ok" | "op" | "cached" | "us" | "threads"))
        .cloned()
        .collect();
    Some((CachedResult { ok, fields }, cached))
}

/// Whether a result is a `timeout` error (never cached or published —
/// it reflects a deadline, not the request's identity).
fn is_timeout(result: &CachedResult) -> bool {
    !result.ok
        && result
            .fields
            .iter()
            .any(|(k, v)| k == "error" && v.get("kind").and_then(Json::as_str) == Some("timeout"))
}

fn cache_key(req: &Request, effective_fuel: u64) -> CacheKey {
    let classes: String = req
        .classes
        .iter()
        .map(|(n, c)| format!("{n}={c};"))
        .collect();
    let inputs: String = req
        .inputs
        .iter()
        .map(|(n, v)| format!("{n}={v};"))
        .collect();
    let fuel = effective_fuel.to_string();
    let max_states = req.max_states.map(|n| n.to_string()).unwrap_or_default();
    CacheKey::of(&[
        req.op.name(),
        &req.lattice,
        req.default_class.as_deref().unwrap_or(""),
        if req.baseline { "baseline" } else { "" },
        if req.dot { "dot" } else { "" },
        if req.with_proof { "with_proof" } else { "" },
        req.cert.as_deref().unwrap_or(""),
        &fuel,
        &classes,
        &inputs,
        &max_states,
        // The reduced and full searches return different `states`
        // counts, so the mode is part of the identity of the result.
        if req.por { "" } else { "no-por" },
        &req.source,
    ])
}

/// Renders the final response line. `extra` carries per-response fields
/// (like the effective `threads`) that must not live in the cached
/// payload — they are appended next to `cached`/`us` on every reply.
fn finish_line(
    req: &Request,
    result: &CachedResult,
    cached: bool,
    start: Instant,
    extra: &[(String, Json)],
) -> String {
    let base = if result.ok {
        Response::ok(req.id.as_ref(), req.op)
    } else {
        // Error fields already include the `error` object.
        let mut fields = vec![("ok".to_string(), Json::Bool(false))];
        if let Some(id) = &req.id {
            fields.insert(0, ("id".to_string(), id.clone()));
        }
        fields.push(("op".to_string(), Json::Str(req.op.name().to_string())));
        return Json::Obj(
            fields
                .into_iter()
                .chain(result.fields.iter().cloned())
                .chain(extra.iter().cloned())
                .chain([
                    ("cached".to_string(), Json::Bool(cached)),
                    elapsed_field(start),
                ])
                .collect(),
        )
        .to_string();
    };
    base.fields(&result.fields)
        .fields(extra)
        .field("cached", Json::Bool(cached))
        .fields(&[elapsed_field(start)])
        .into_line()
}

fn elapsed_field(start: Instant) -> (String, Json) {
    (
        "us".to_string(),
        Json::Num(start.elapsed().as_micros() as f64),
    )
}

/// Executes the op-specific part under a concrete scheme.
/// `show_class` renders a lattice element in the certificate's
/// canonical spelling (`"low"`/`"high"`, `"0"`..`"N-1"`) — the `Display`
/// impls (`Low`, `L3`) are for humans, not for the wire.
fn run_op<S: Scheme>(
    req: &Request,
    program: &Program,
    scheme: &S,
    parse_class: &dyn Fn(&str) -> Result<S::Elem, String>,
    show_class: &dyn Fn(&S::Elem) -> String,
) -> Outcome
where
    S::Elem: Lattice + Display,
{
    match req.op {
        Op::Certify => {
            if req.with_proof && req.baseline {
                return Err((
                    ErrorKind::Binding,
                    "`with_proof` needs the CFM flow logic; the Denning baseline has no proof"
                        .to_string(),
                ));
            }
            let binding = build_binding(req, program, scheme, parse_class)?;
            let report = if req.baseline {
                denning_certify(program, &binding)
            } else {
                certify(program, &binding)
            };
            let mut fields = vec![
                ("certified".to_string(), Json::Bool(report.certified())),
                (
                    "violations".to_string(),
                    Json::Num(report.violations.len() as f64),
                ),
                ("checks".to_string(), Json::Num(report.checks as f64)),
                (
                    "statements".to_string(),
                    Json::Num(program.statement_count() as f64),
                ),
                ("report".to_string(), Json::Str(report.render(&req.source))),
            ];
            if req.with_proof && report.certified() {
                // Theorem 1: a CFM-certified program always has a proof
                // in the flow logic, so a failure here is a bug in the
                // prover, not in the request.
                let proof =
                    prove(program, &binding, Extended::Nil, Extended::Nil).map_err(|e| {
                        (
                            ErrorKind::Internal,
                            format!("Theorem 1 prover failed on a certified program: {e}"),
                        )
                    })?;
                let cert = emit_certificate(
                    &proof,
                    &program.symbols,
                    &req.lattice,
                    &req.source,
                    show_class,
                );
                fields.push(("certificate".to_string(), Json::Str(cert.text)));
                fields.push(("proof_digest".to_string(), Json::Str(cert.digest)));
                fields.push(("proof_nodes".to_string(), Json::Num(cert.nodes as f64)));
            }
            Ok(fields)
        }
        Op::Infer => {
            let mut pins = Vec::new();
            for (name, class) in &req.classes {
                let id = program
                    .symbols
                    .lookup(name)
                    .ok_or_else(|| (ErrorKind::Binding, format!("`{name}` is not declared")))?;
                let c = parse_class(class).map_err(|e| (ErrorKind::Binding, e))?;
                pins.push((id, c));
            }
            match infer_binding(program, scheme, pins) {
                Ok(binding) => {
                    let classes: Vec<(String, Json)> = binding
                        .iter()
                        .map(|(id, class)| {
                            (
                                program.symbols.name(id).to_string(),
                                Json::Str(class.to_string()),
                            )
                        })
                        .collect();
                    Ok(vec![
                        ("satisfiable".to_string(), Json::Bool(true)),
                        ("binding".to_string(), Json::Obj(classes)),
                    ])
                }
                Err(unsat) => Ok(vec![
                    ("satisfiable".to_string(), Json::Bool(false)),
                    (
                        "conflict".to_string(),
                        Json::Str(format!(
                            "{} is pinned at {} but needs {}",
                            program.symbols.name(unsat.var),
                            unsat.pinned,
                            unsat.required
                        )),
                    ),
                    ("chain".to_string(), Json::Str(unsat.render_path(program))),
                ]),
            }
        }
        Op::Flows => {
            let graph = FlowGraph::of(program);
            let rendered = if req.dot {
                let binding = if req.classes.is_empty() && req.default_class.is_none() {
                    None
                } else {
                    Some(build_binding(req, program, scheme, parse_class)?)
                };
                graph.to_dot(program, binding.as_ref())
            } else {
                graph.render(program)
            };
            Ok(vec![("graph".to_string(), Json::Str(rendered))])
        }
        Op::Lint
        | Op::Explore
        | Op::Checkproof
        | Op::Stats
        | Op::Shutdown
        | Op::Forward
        | Op::PeerSync
        | Op::Ping
        | Op::Replicate
        | Op::Repair => {
            unreachable!("handled before dispatch")
        }
    }
}

/// Response fields for the `checkproof` op. Both verdicts are `ok:true`
/// results: `valid:true` carries the digest and node count, while
/// `valid:false` carries a structured `reason` naming the validation
/// stage that failed (`json`, `format`, `version`, `digest`, `program`,
/// `source`, `lattice`, `proof`, `check`).
fn checkproof_fields(source: &str, cert: &str) -> Vec<(String, Json)> {
    match validate_certificate(source, cert) {
        Ok(summary) => vec![
            ("valid".to_string(), Json::Bool(true)),
            ("proof_digest".to_string(), Json::Str(summary.digest)),
            ("proof_nodes".to_string(), Json::Num(summary.nodes as f64)),
            ("lattice".to_string(), Json::Str(summary.lattice)),
        ],
        Err(err) => vec![
            ("valid".to_string(), Json::Bool(false)),
            (
                "reason".to_string(),
                Json::Obj(vec![
                    ("stage".to_string(), Json::Str(err.stage.to_string())),
                    ("message".to_string(), Json::Str(err.message)),
                ]),
            ),
        ],
    }
}

/// Response fields for the `lint` op: aggregate counts plus one JSON
/// object per diagnostic (deterministically ordered by the analyzer).
fn lint_fields(report: &AnalysisReport, source: &str) -> Vec<(String, Json)> {
    let idx = LineIndex::new(source);
    let count = |s: Severity| report.count(s) as f64;
    let diags: Vec<Json> = report
        .diags
        .iter()
        .map(|d| {
            let (line, col) = idx.line_col(d.span.start);
            let mut fields = vec![
                ("code".to_string(), Json::Str(d.code.to_string())),
                (
                    "severity".to_string(),
                    Json::Str(d.severity.as_str().to_string()),
                ),
                ("line".to_string(), Json::Num(line as f64)),
                ("col".to_string(), Json::Num(col as f64)),
                ("message".to_string(), Json::Str(d.message.clone())),
            ];
            if let Some(fix) = &d.fix {
                fields.push(("fix".to_string(), Json::Str(fix.clone())));
            }
            Json::Obj(fields)
        })
        .collect();
    vec![
        ("clean".to_string(), Json::Bool(report.clean())),
        ("errors".to_string(), Json::Num(count(Severity::Error))),
        ("warnings".to_string(), Json::Num(count(Severity::Warning))),
        ("infos".to_string(), Json::Num(count(Severity::Info))),
        ("diagnostics".to_string(), Json::Arr(diags)),
    ]
}

fn build_binding<S: Scheme>(
    req: &Request,
    program: &Program,
    scheme: &S,
    parse_class: &dyn Fn(&str) -> Result<S::Elem, String>,
) -> Result<StaticBinding<S::Elem>, (ErrorKind, String)>
where
    S::Elem: Lattice,
{
    let base = match &req.default_class {
        Some(c) => parse_class(c).map_err(|e| (ErrorKind::Binding, e))?,
        None => scheme.low(),
    };
    let mut binding = StaticBinding::constant(&program.symbols, scheme, base);
    for (name, class) in &req.classes {
        let id = program
            .symbols
            .lookup(name)
            .ok_or_else(|| (ErrorKind::Binding, format!("`{name}` is not declared")))?;
        let c = parse_class(class).map_err(|e| (ErrorKind::Binding, e))?;
        binding.set(id, c);
    }
    Ok(binding)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEAKY: &str = "var x, y : integer; sem : semaphore;
        cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend";

    fn svc() -> Service {
        Service::new(64, Limits::default())
    }

    fn line(source: &str, classes: &str) -> String {
        format!(
            r#"{{"op":"certify","source":{},"classes":{classes}}}"#,
            Json::Str(source.to_string())
        )
    }

    #[test]
    fn certify_round_trip() {
        let s = svc();
        let out = s.handle_line(&line(LEAKY, r#"{"x":"high"}"#));
        let v = Json::parse(&out).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("certified").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("cached").and_then(Json::as_bool), Some(false));

        // Identical request: served from cache.
        let out2 = s.handle_line(&line(LEAKY, r#"{"x":"high"}"#));
        let v2 = Json::parse(&out2).unwrap();
        assert_eq!(v2.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(v2.get("certified").and_then(Json::as_bool), Some(false));
        use std::sync::atomic::Ordering::Relaxed;
        assert_eq!(s.metrics.cache_hits.load(Relaxed), 1);

        // Different binding: a distinct cache entry, certifies cleanly.
        let out3 = s.handle_line(&line(LEAKY, r#"{}"#));
        let v3 = Json::parse(&out3).unwrap();
        assert_eq!(v3.get("certified").and_then(Json::as_bool), Some(true));
        assert_eq!(v3.get("cached").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn parse_errors_are_reported_and_cached() {
        let s = svc();
        let bad = line("var x integer; x := ", r#"{}"#);
        let v = Json::parse(&s.handle_line(&bad)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        let kind = v
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str);
        assert_eq!(kind, Some("parse"));
        let v2 = Json::parse(&s.handle_line(&bad)).unwrap();
        assert_eq!(v2.get("cached").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn fuel_limit_is_enforced() {
        let s = svc();
        let req = format!(
            r#"{{"op":"certify","source":{},"fuel":1}}"#,
            Json::Str(LEAKY.to_string())
        );
        let v = Json::parse(&s.handle_line(&req)).unwrap();
        let kind = v
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str);
        assert_eq!(kind, Some("fuel"));
    }

    #[test]
    fn infer_and_flows() {
        let s = svc();
        let req = format!(
            r#"{{"op":"infer","source":{},"pins":{{"x":"high","y":"low"}}}}"#,
            Json::Str(LEAKY.to_string())
        );
        let v = Json::parse(&s.handle_line(&req)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("satisfiable").and_then(Json::as_bool), Some(false));
        assert!(v.get("chain").and_then(Json::as_str).is_some());

        let req = format!(
            r#"{{"op":"flows","source":{},"dot":true}}"#,
            Json::Str(LEAKY.to_string())
        );
        let v = Json::parse(&s.handle_line(&req)).unwrap();
        let dot = v.get("graph").and_then(Json::as_str).unwrap();
        assert!(dot.contains("digraph"));
    }

    #[test]
    fn linear_lattice_classes() {
        let s = svc();
        let req = format!(
            r#"{{"op":"certify","source":{},"lattice":"linear:4","classes":{{"x":"3","y":"0"}}}}"#,
            Json::Str(LEAKY.to_string())
        );
        let v = Json::parse(&s.handle_line(&req)).unwrap();
        assert_eq!(v.get("certified").and_then(Json::as_bool), Some(false));
        // Bad lattice spec.
        let req = format!(
            r#"{{"op":"certify","source":{},"lattice":"diamond"}}"#,
            Json::Str(LEAKY.to_string())
        );
        let v = Json::parse(&s.handle_line(&req)).unwrap();
        let kind = v
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str);
        assert_eq!(kind, Some("binding"));
    }

    #[test]
    fn lint_reports_diagnostics_and_caches() {
        let s = svc();
        let req = format!(
            r#"{{"op":"lint","source":{}}}"#,
            Json::Str(LEAKY.to_string())
        );
        let v = Json::parse(&s.handle_line(&req)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("clean").and_then(Json::as_bool), Some(false));
        // §2.2: the deadlock-capable wait (SF010) is a warning.
        assert!(v.get("warnings").and_then(Json::as_u64).unwrap() >= 1);
        let diags = match v.get("diagnostics") {
            Some(Json::Arr(a)) => a,
            other => panic!("diagnostics not an array: {other:?}"),
        };
        assert!(diags
            .iter()
            .any(|d| d.get("code").and_then(Json::as_str) == Some("SF010")));
        for d in diags {
            assert!(d.get("severity").and_then(Json::as_str).is_some());
            assert!(d.get("line").and_then(Json::as_u64).is_some());
            assert!(d.get("message").and_then(Json::as_str).is_some());
        }

        let v2 = Json::parse(&s.handle_line(&req)).unwrap();
        assert_eq!(v2.get("cached").and_then(Json::as_bool), Some(true));

        let stats = Json::parse(&s.handle_line(r#"{"op":"stats"}"#)).unwrap();
        assert_eq!(stats.get("lint").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn lint_of_clean_program_is_clean() {
        let s = svc();
        let req = format!(
            r#"{{"op":"lint","source":{}}}"#,
            Json::Str("var x : integer; x := 1".to_string())
        );
        let v = Json::parse(&s.handle_line(&req)).unwrap();
        assert_eq!(v.get("clean").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("errors").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn explore_round_trip() {
        let s = svc();
        let req = format!(
            r#"{{"op":"explore","source":{},"inputs":{{"x":1}}}}"#,
            Json::Str(LEAKY.to_string())
        );
        let v = Json::parse(&s.handle_line(&req)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        // With x = 1 the §2.2 channel deadlocks on the wait.
        assert!(v.get("deadlocks").and_then(Json::as_u64).unwrap() >= 1);
        assert_eq!(v.get("truncated").and_then(Json::as_bool), Some(false));

        // Same request, different max_states: a distinct cache entry.
        let v2 = Json::parse(&s.handle_line(&req)).unwrap();
        assert_eq!(v2.get("cached").and_then(Json::as_bool), Some(true));
        let capped = format!(
            r#"{{"op":"explore","source":{},"inputs":{{"x":1}},"max_states":2}}"#,
            Json::Str(LEAKY.to_string())
        );
        let v3 = Json::parse(&s.handle_line(&capped)).unwrap();
        assert_eq!(v3.get("cached").and_then(Json::as_bool), Some(false));
        assert_eq!(v3.get("truncated").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn threads_above_the_cap_are_clamped_not_rejected() {
        let s = Service::new(
            64,
            Limits {
                max_threads: 2,
                ..Limits::default()
            },
        );
        let req = format!(
            r#"{{"op":"explore","source":{},"inputs":{{"x":1}},"threads":64}}"#,
            Json::Str(LEAKY.to_string())
        );
        let v = Json::parse(&s.handle_line(&req)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        // The reply reflects the effective (clamped) thread count.
        assert_eq!(v.get("threads").and_then(Json::as_u64), Some(2));
        assert!(v.get("deadlocks").and_then(Json::as_u64).unwrap() >= 1);
        assert_eq!(s.metrics.threads_clamped.load(Relaxed), 1);

        // Within the cap: no clamp, echoed verbatim.
        let modest = format!(
            r#"{{"op":"explore","source":{},"inputs":{{"x":1}},"threads":2}}"#,
            Json::Str(LEAKY.to_string())
        );
        let v2 = Json::parse(&s.handle_line(&modest)).unwrap();
        assert_eq!(v2.get("threads").and_then(Json::as_u64), Some(2));
        assert_eq!(s.metrics.threads_clamped.load(Relaxed), 1);
    }

    #[test]
    fn parallel_and_sequential_explores_share_a_cache_entry() {
        let s = svc();
        let parallel = format!(
            r#"{{"op":"explore","source":{},"inputs":{{"x":1}},"threads":4}}"#,
            Json::Str(LEAKY.to_string())
        );
        let v = Json::parse(&s.handle_line(&parallel)).unwrap();
        assert_eq!(v.get("cached").and_then(Json::as_bool), Some(false));
        let states = v.get("states").and_then(Json::as_u64).unwrap();

        // The equivalent sequential request has the same content
        // address: it must hit the entry the parallel run populated.
        let sequential = format!(
            r#"{{"op":"explore","source":{},"inputs":{{"x":1}}}}"#,
            Json::Str(LEAKY.to_string())
        );
        let v2 = Json::parse(&s.handle_line(&sequential)).unwrap();
        assert_eq!(v2.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(v2.get("states").and_then(Json::as_u64), Some(states));
        // No `threads` on the request — none echoed back.
        assert!(v2.get("threads").is_none());
        assert_eq!(s.metrics.cache_hits.load(Relaxed), 1);
        assert_eq!(s.metrics.threads_clamped.load(Relaxed), 0);
    }

    #[test]
    fn por_mode_is_a_distinct_cache_entry_with_identical_verdicts() {
        let s = svc();
        let reduced = format!(
            r#"{{"op":"explore","source":{},"inputs":{{"x":1}}}}"#,
            Json::Str(LEAKY.to_string())
        );
        let full = format!(
            r#"{{"op":"explore","source":{},"inputs":{{"x":1}},"por":false}}"#,
            Json::Str(LEAKY.to_string())
        );
        let v = Json::parse(&s.handle_line(&reduced)).unwrap();
        assert_eq!(v.get("por").and_then(Json::as_bool), Some(true));
        // The full search must not hit the reduced entry: its `states`
        // count is different.
        let v2 = Json::parse(&s.handle_line(&full)).unwrap();
        assert_eq!(v2.get("cached").and_then(Json::as_bool), Some(false));
        assert_eq!(v2.get("por").and_then(Json::as_bool), Some(false));
        assert_eq!(v2.get("states_pruned").and_then(Json::as_u64), Some(0));
        // Identical safety verdicts either way.
        for key in ["outcomes", "deadlocks", "faults"] {
            assert_eq!(
                v.get(key).and_then(Json::as_u64),
                v2.get(key).and_then(Json::as_u64),
                "{key} differs between por modes"
            );
        }
        assert!(
            v.get("states").and_then(Json::as_u64).unwrap()
                <= v2.get("states").and_then(Json::as_u64).unwrap()
        );
        // The stats snapshot exposes the pruning counters.
        let stats = Json::parse(&s.handle_line(r#"{"op":"stats"}"#)).unwrap();
        assert!(stats
            .get("explore_states_pruned")
            .and_then(Json::as_u64)
            .is_some());
        assert!(stats.get("explore_reduction_ratio").is_some());
    }

    #[test]
    fn parallel_lint_matches_sequential_lint() {
        let s = svc();
        let seq = format!(
            r#"{{"op":"lint","source":{}}}"#,
            Json::Str(LEAKY.to_string())
        );
        let par = format!(
            r#"{{"op":"lint","source":{},"threads":4}}"#,
            Json::Str(LEAKY.to_string())
        );
        let v = Json::parse(&s.handle_line(&seq)).unwrap();
        // Same content address: the parallel request is a cache hit,
        // and its diagnostics are the sequential ones.
        let v2 = Json::parse(&s.handle_line(&par)).unwrap();
        assert_eq!(v2.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(v2.get("threads").and_then(Json::as_u64), Some(4));
        assert_eq!(v2.get("diagnostics"), v.get("diagnostics"));
    }

    #[test]
    fn explore_throughput_lands_in_stats() {
        let s = svc();
        let req = format!(
            r#"{{"op":"explore","source":{},"inputs":{{"x":1}}}}"#,
            Json::Str(LEAKY.to_string())
        );
        s.handle_line(&req);
        let v = Json::parse(&s.handle_line(r#"{"op":"stats"}"#)).unwrap();
        assert!(v.get("explore_states").and_then(Json::as_u64).unwrap() >= 1);
        assert!(v.get("threads_clamped").and_then(Json::as_u64).is_some());
        let rate = match v.get("explore_states_per_sec") {
            Some(Json::Num(n)) => *n,
            other => panic!("explore_states_per_sec missing: {other:?}"),
        };
        assert!(rate >= 0.0);
    }

    #[test]
    fn expired_deadline_is_structured_timeout_and_never_cached() {
        let s = svc();
        let req = Request::parse(&line(LEAKY, r#"{"x":"high"}"#)).unwrap();
        let token = CancelToken::unbounded();
        token.cancel();
        s.note_request();
        let v = Json::parse(&s.execute_with_cancel(&req, &token)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        let kind = v
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str);
        assert_eq!(kind, Some("timeout"));
        assert_eq!(s.metrics.timeouts.load(Relaxed), 1);

        // The timeout was not cached: the same request now computes.
        let v2 = Json::parse(&s.handle_line(&line(LEAKY, r#"{"x":"high"}"#))).unwrap();
        assert_eq!(v2.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v2.get("cached").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn effective_timeout_is_clamped() {
        let limits = Limits::default();
        let mut req = Request::parse(r#"{"op":"stats"}"#).unwrap();
        assert_eq!(limits.effective_timeout_ms(&req), 30_000);
        req.timeout_ms = Some(5);
        assert_eq!(limits.effective_timeout_ms(&req), 5);
        req.timeout_ms = Some(u64::MAX);
        assert_eq!(limits.effective_timeout_ms(&req), 300_000);
        req.timeout_ms = Some(0);
        assert_eq!(limits.effective_timeout_ms(&req), 0);
    }

    #[test]
    fn stats_reports_counters() {
        let s = svc();
        s.handle_line(&line(LEAKY, r#"{"x":"high"}"#));
        s.handle_line(&line(LEAKY, r#"{"x":"high"}"#));
        let v = Json::parse(&s.handle_line(r#"{"op":"stats"}"#)).unwrap();
        assert_eq!(v.get("requests").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("certify").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("cache_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("cache_misses").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("cache_entries").and_then(Json::as_u64), Some(1));
        assert!(v.get("latency_histogram").is_some());
    }

    /// A program the CFM certifies with everything Low — the simplest
    /// source of a real Theorem 1 proof.
    const CLEAN: &str = "var x, y : integer;
        cobegin y := x || x := 1 coend";

    fn certify_with_proof(s: &Service, source: &str) -> Json {
        let req = format!(
            r#"{{"op":"certify","source":{},"with_proof":true}}"#,
            Json::Str(source.to_string())
        );
        Json::parse(&s.handle_line(&req)).unwrap()
    }

    fn checkproof_line(source: &str, cert: &str) -> String {
        format!(
            r#"{{"op":"checkproof","source":{},"cert":{}}}"#,
            Json::Str(source.to_string()),
            Json::Str(cert.to_string())
        )
    }

    #[test]
    fn certify_with_proof_emits_a_certificate_once() {
        let s = svc();
        let v = certify_with_proof(&s, CLEAN);
        assert_eq!(v.get("certified").and_then(Json::as_bool), Some(true));
        let cert = v.get("certificate").and_then(Json::as_str).unwrap();
        let digest = v.get("proof_digest").and_then(Json::as_str).unwrap();
        assert!(cert.contains(digest));
        assert!(v.get("proof_nodes").and_then(Json::as_u64).unwrap() >= 1);
        assert_eq!(s.metrics.proofs_emitted.load(Relaxed), 1);
        assert_eq!(s.metrics.proof_bytes_total.load(Relaxed), cert.len() as u64);

        // Cached re-serve: the certificate comes back byte-identical
        // and the prover does not run again.
        let v2 = certify_with_proof(&s, CLEAN);
        assert_eq!(v2.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(v2.get("certificate").and_then(Json::as_str), Some(cert));
        assert_eq!(s.metrics.proofs_emitted.load(Relaxed), 1);

        // Plain certify of the same program: a distinct cache entry
        // with no certificate attached.
        let plain = Json::parse(&s.handle_line(&line(CLEAN, r#"{}"#))).unwrap();
        assert_eq!(plain.get("cached").and_then(Json::as_bool), Some(false));
        assert!(plain.get("certificate").is_none());
    }

    #[test]
    fn uncertified_with_proof_has_no_certificate() {
        let s = svc();
        let req = format!(
            r#"{{"op":"certify","source":{},"classes":{{"x":"high"}},"with_proof":true}}"#,
            Json::Str(LEAKY.to_string())
        );
        let v = Json::parse(&s.handle_line(&req)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("certified").and_then(Json::as_bool), Some(false));
        assert!(v.get("certificate").is_none());
        assert_eq!(s.metrics.proofs_emitted.load(Relaxed), 0);
    }

    #[test]
    fn with_proof_under_the_baseline_is_a_binding_error() {
        let s = svc();
        let req = format!(
            r#"{{"op":"certify","source":{},"baseline":true,"with_proof":true}}"#,
            Json::Str(CLEAN.to_string())
        );
        let v = Json::parse(&s.handle_line(&req)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        let kind = v
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str);
        assert_eq!(kind, Some("binding"));
    }

    #[test]
    fn checkproof_validates_without_reproving() {
        let s = svc();
        let v = certify_with_proof(&s, CLEAN);
        let cert = v.get("certificate").and_then(Json::as_str).unwrap();
        let digest = v.get("proof_digest").and_then(Json::as_str).unwrap();
        assert_eq!(s.metrics.proofs_emitted.load(Relaxed), 1);

        let v2 = Json::parse(&s.handle_line(&checkproof_line(CLEAN, cert))).unwrap();
        assert_eq!(v2.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v2.get("valid").and_then(Json::as_bool), Some(true));
        assert_eq!(v2.get("proof_digest").and_then(Json::as_str), Some(digest));
        assert_eq!(v2.get("lattice").and_then(Json::as_str), Some("two"));
        // Validation never touched the prover.
        assert_eq!(s.metrics.proofs_emitted.load(Relaxed), 1);
        assert_eq!(s.metrics.checkproof_valid.load(Relaxed), 1);

        // The same certificate again: a digest-addressed cache hit.
        let v3 = Json::parse(&s.handle_line(&checkproof_line(CLEAN, cert))).unwrap();
        assert_eq!(v3.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(v3.get("valid").and_then(Json::as_bool), Some(true));
        assert_eq!(s.metrics.checkproof_cache_hits.load(Relaxed), 1);
        // The verdict counters track fresh computations only.
        assert_eq!(s.metrics.checkproof_valid.load(Relaxed), 1);
    }

    #[test]
    fn corrupted_certificates_are_verdicts_not_errors() {
        let s = svc();
        let v = certify_with_proof(&s, CLEAN);
        let cert = v.get("certificate").and_then(Json::as_str).unwrap();
        let corrupted = cert.replacen("cobegin", "cobegiN", 1);
        assert_ne!(&corrupted, cert, "mutation must change the text");

        let v2 = Json::parse(&s.handle_line(&checkproof_line(CLEAN, &corrupted))).unwrap();
        assert_eq!(v2.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v2.get("valid").and_then(Json::as_bool), Some(false));
        let stage = v2
            .get("reason")
            .and_then(|r| r.get("stage"))
            .and_then(Json::as_str)
            .unwrap();
        assert_eq!(stage, "digest");
        assert_eq!(s.metrics.checkproof_rejected.load(Relaxed), 1);

        // A certificate for a different program is rejected too.
        let v3 = Json::parse(&s.handle_line(&checkproof_line(LEAKY, cert))).unwrap();
        assert_eq!(v3.get("valid").and_then(Json::as_bool), Some(false));
        let stage3 = v3
            .get("reason")
            .and_then(|r| r.get("stage"))
            .and_then(Json::as_str)
            .unwrap();
        assert_eq!(stage3, "program");
    }

    #[test]
    fn stats_reports_the_cert_object() {
        let s = svc();
        let v = certify_with_proof(&s, CLEAN);
        let cert = v.get("certificate").and_then(Json::as_str).unwrap();
        s.handle_line(&checkproof_line(CLEAN, cert));
        s.handle_line(&checkproof_line(CLEAN, cert));
        let stats = Json::parse(&s.handle_line(r#"{"op":"stats"}"#)).unwrap();
        let cert_stats = stats.get("cert").expect("stats carries a cert object");
        let field = |k: &str| cert_stats.get(k).and_then(Json::as_u64).unwrap();
        assert_eq!(field("proofs_emitted"), 1);
        assert_eq!(field("checkproof_requests"), 2);
        assert_eq!(field("checkproof_valid"), 1);
        assert_eq!(field("checkproof_rejected"), 0);
        assert_eq!(field("cache_hits_by_digest"), 1);
        assert_eq!(field("proof_bytes_total"), cert.len() as u64);
    }

    #[test]
    fn with_proof_works_on_the_linear_lattice() {
        let s = svc();
        let req = format!(
            r#"{{"op":"certify","source":{},"lattice":"linear:4","with_proof":true}}"#,
            Json::Str(CLEAN.to_string())
        );
        let v = Json::parse(&s.handle_line(&req)).unwrap();
        assert_eq!(v.get("certified").and_then(Json::as_bool), Some(true));
        let cert = v.get("certificate").and_then(Json::as_str).unwrap();

        let check = format!(
            r#"{{"op":"checkproof","source":{},"cert":{}}}"#,
            Json::Str(CLEAN.to_string()),
            Json::Str(cert.to_string())
        );
        let v2 = Json::parse(&s.handle_line(&check)).unwrap();
        assert_eq!(v2.get("valid").and_then(Json::as_bool), Some(true));
        assert_eq!(v2.get("lattice").and_then(Json::as_str), Some("linear:4"));
    }

    // ---- single-flight coalescing -------------------------------------

    /// Drops the timing-dependent fields (`us`, and `cached`, which
    /// says *where* the answer came from, not *what* it is) so replies
    /// can be compared byte-for-byte.
    fn strip_timing(line: &str) -> String {
        let Ok(Json::Obj(fields)) = Json::parse(line) else {
            panic!("reply is not a JSON object: {line}");
        };
        Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "us" && k != "cached")
                .collect(),
        )
        .to_string()
    }

    /// An interleaving-heavy program: three independent processes, so a
    /// full (`por:false`) search is exponential while the program stays
    /// tiny — a computation reliably long enough that a stampede
    /// arriving after the leader has registered its flight attaches to
    /// it rather than finding the cache already filled.
    fn heavy_explore_line(max_states: u64) -> String {
        let proc_body = |var: &str| {
            let steps: Vec<String> = (1..=6).map(|i| format!("{var} := {i}")).collect();
            format!("begin {} end", steps.join("; "))
        };
        let source = format!(
            "var a, b, c : integer; cobegin {} || {} || {} coend",
            proc_body("a"),
            proc_body("b"),
            proc_body("c")
        );
        format!(
            r#"{{"op":"explore","source":{},"max_states":{max_states},"por":false,"timeout_ms":0}}"#,
            Json::Str(source)
        )
    }

    /// Spawns a leader for `req`, waits (deterministically, by watching
    /// the in-flight table) until it is computing, then looses `k - 1`
    /// identical requests at it. Returns every reply line.
    fn stampede(s: &Arc<Service>, req: &str, k: usize) -> Vec<String> {
        let leader = {
            let s = Arc::clone(s);
            let req = req.to_string();
            std::thread::spawn(move || s.handle_line(&req))
        };
        while s.inflight.lock().unwrap().is_empty() {
            assert!(
                !leader.is_finished(),
                "leader finished before registering a flight"
            );
            std::thread::yield_now();
        }
        let waiters: Vec<_> = (1..k)
            .map(|_| {
                let s = Arc::clone(s);
                let req = req.to_string();
                std::thread::spawn(move || s.handle_line(&req))
            })
            .collect();
        let mut lines = vec![leader.join().unwrap()];
        for w in waiters {
            lines.push(w.join().unwrap());
        }
        lines
    }

    #[test]
    fn stampede_of_identical_explores_coalesces_to_one_computation() {
        const K: usize = 6;
        let s = Arc::new(svc());
        let req = heavy_explore_line(60_000);
        let lines = stampede(&s, &req, K);

        // Exactly one exploration ran; everyone else attached to it.
        assert_eq!(s.metrics.cache_misses.load(Relaxed), 1);
        assert_eq!(s.metrics.coalesced_hits.load(Relaxed), (K - 1) as u64);
        assert_eq!(s.metrics.cache_hits.load(Relaxed), 0);
        // Op counters count requests (pinned elsewhere), so all K show.
        assert_eq!(s.metrics.explore.load(Relaxed), K as u64);
        let first = Json::parse(&lines[0]).unwrap();
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        let states = first.get("states").and_then(Json::as_u64).unwrap();
        assert_eq!(
            s.metrics.explore_states.load(Relaxed),
            states,
            "the states metric carries one exploration's worth, not K's"
        );

        // Byte-identical replies modulo timing fields, and exactly one
        // of them (the leader's) was computed rather than shared.
        let stripped: Vec<String> = lines.iter().map(|l| strip_timing(l)).collect();
        assert!(stripped.iter().all(|l| l == &stripped[0]));
        let computed = lines
            .iter()
            .filter(|l| {
                Json::parse(l)
                    .unwrap()
                    .get("cached")
                    .and_then(Json::as_bool)
                    == Some(false)
            })
            .count();
        assert_eq!(computed, 1);
    }

    #[test]
    fn coalesced_with_proof_serves_one_proof_to_every_waiter() {
        const K: usize = 4;
        let s = Arc::new(svc());
        // A clean program large enough that proving it takes real time.
        let steps: Vec<String> = (0..4000).map(|i| format!("x := {i}")).collect();
        let source = format!("var x : integer; begin {} end", steps.join("; "));
        let req = format!(
            r#"{{"op":"certify","source":{},"with_proof":true,"timeout_ms":0}}"#,
            Json::Str(source)
        );
        let lines = stampede(&s, &req, K);

        // One proof was emitted, every reply carries it byte-identically.
        assert_eq!(s.metrics.proofs_emitted.load(Relaxed), 1);
        assert_eq!(s.metrics.cache_misses.load(Relaxed), 1);
        assert!(s.metrics.coalesced_hits.load(Relaxed) >= 1);
        assert_eq!(
            s.metrics.coalesced_hits.load(Relaxed) + s.metrics.cache_hits.load(Relaxed),
            (K - 1) as u64
        );
        let certs: Vec<String> = lines
            .iter()
            .map(|l| {
                let v = Json::parse(l).unwrap();
                assert_eq!(v.get("certified").and_then(Json::as_bool), Some(true));
                v.get("certificate")
                    .and_then(Json::as_str)
                    .expect("every coalesced reply carries the certificate")
                    .to_string()
            })
            .collect();
        assert!(certs.iter().all(|c| c == &certs[0]));
    }

    /// The failure-result path: a published error is shared with every
    /// waiter, counted as an error for each, and never poisons anyone
    /// with a hang. Driven through a hand-planted flight so the test is
    /// deterministic — the "leader" here is the test itself.
    #[test]
    fn waiters_share_a_published_failure_result() {
        const K: usize = 4;
        let s = Arc::new(svc());
        let bad = line("var x integer; x := ", r#"{}"#);
        let req = Request::parse(&bad).unwrap();
        let fuel = req.fuel.unwrap_or(u64::MAX).min(s.limits.max_fuel);
        let key = cache_key(&req, fuel);
        let flight = Arc::new(Flight::new());
        s.inflight
            .lock()
            .unwrap()
            .insert(key.canon.clone(), Arc::clone(&flight));

        let waiters: Vec<_> = (0..K)
            .map(|_| {
                let s = Arc::clone(&s);
                let bad = bad.clone();
                std::thread::spawn(move || s.handle_line(&bad))
            })
            .collect();
        // Each waiter holds one clone of the flight while attached.
        while Arc::strong_count(&flight) < K + 2 {
            std::thread::yield_now();
        }
        // Publish a failure the way a leader's guard would.
        s.inflight.lock().unwrap().remove(&key.canon);
        let failure = CachedResult {
            ok: false,
            fields: vec![(
                "error".to_string(),
                Json::Obj(vec![
                    ("kind".to_string(), Json::Str("parse".to_string())),
                    ("message".to_string(), Json::Str("boom".to_string())),
                ]),
            )],
        };
        *flight.slot.lock().unwrap() = Some(Some(failure));
        flight.cv.notify_all();

        let lines: Vec<String> = waiters.into_iter().map(|w| w.join().unwrap()).collect();
        assert_eq!(s.metrics.coalesced_hits.load(Relaxed), K as u64);
        assert_eq!(s.metrics.errors.load(Relaxed), K as u64);
        let stripped: Vec<String> = lines.iter().map(|l| strip_timing(l)).collect();
        assert!(stripped.iter().all(|l| l == &stripped[0]));
        let v = Json::parse(&lines[0]).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("parse")
        );
    }

    /// A leader that vanishes without a shareable result (publishing
    /// `None`, as a panicking or timed-out leader's guard does) releases
    /// its waiters to recompute instead of stranding them.
    #[test]
    fn an_abandoned_flight_releases_waiters_to_recompute() {
        let s = Arc::new(svc());
        let bad = line("var x integer; x := ", r#"{}"#);
        let req = Request::parse(&bad).unwrap();
        let fuel = req.fuel.unwrap_or(u64::MAX).min(s.limits.max_fuel);
        let key = cache_key(&req, fuel);
        let flight = Arc::new(Flight::new());
        s.inflight
            .lock()
            .unwrap()
            .insert(key.canon.clone(), Arc::clone(&flight));

        let waiter = {
            let s = Arc::clone(&s);
            let bad = bad.clone();
            std::thread::spawn(move || s.handle_line(&bad))
        };
        while Arc::strong_count(&flight) < 3 {
            std::thread::yield_now();
        }
        s.inflight.lock().unwrap().remove(&key.canon);
        *flight.slot.lock().unwrap() = Some(None);
        flight.cv.notify_all();

        // The waiter retried, became the leader, and computed for real.
        let v = Json::parse(&waiter.join().unwrap()).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("cached").and_then(Json::as_bool), Some(false));
        assert_eq!(s.metrics.cache_misses.load(Relaxed), 1);
        assert_eq!(s.metrics.coalesced_hits.load(Relaxed), 0);
    }

    /// A waiter whose own deadline expires while attached gets a
    /// structured timeout promptly — it never inherits the leader's
    /// (possibly longer) deadline, and never hangs.
    #[test]
    fn an_expired_waiter_gets_a_structured_timeout() {
        let s = svc();
        let req = Request::parse(&line(LEAKY, r#"{"x":"high"}"#)).unwrap();
        let fuel = req.fuel.unwrap_or(u64::MAX).min(s.limits.max_fuel);
        let key = cache_key(&req, fuel);
        // A flight that will never publish, as from a wedged leader.
        s.inflight
            .lock()
            .unwrap()
            .insert(key.canon.clone(), Arc::new(Flight::new()));
        let token = CancelToken::unbounded();
        token.cancel();
        s.note_request();
        let v = Json::parse(&s.execute_with_cancel(&req, &token)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("timeout")
        );
        assert_eq!(s.metrics.timeouts.load(Relaxed), 1);
        assert_eq!(s.metrics.coalesced_hits.load(Relaxed), 0);
    }

    // ---- self-healing cluster ops -------------------------------------

    #[test]
    fn ping_reports_the_shard_digest() {
        let s = svc();
        let v = Json::parse(&s.handle_line(r#"{"op":"ping"}"#)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("op").and_then(Json::as_str), Some("ping"));
        assert_eq!(v.get("entries").and_then(Json::as_u64), Some(0));
        assert_eq!(
            v.get("digest").and_then(Json::as_str),
            Some("0000000000000000"),
            "an empty shard digests to zero"
        );

        s.handle_line(&line(LEAKY, r#"{}"#));
        let v2 = Json::parse(&s.handle_line(r#"{"op":"ping"}"#)).unwrap();
        assert_eq!(v2.get("entries").and_then(Json::as_u64), Some(1));
        let digest = v2.get("digest").and_then(Json::as_str).unwrap();
        assert_ne!(digest, "0000000000000000");
        assert_eq!(digest, format!("{:016x}", s.shard_digest()));
    }

    #[test]
    fn replicate_installs_verified_entries_idempotently() {
        let s = svc();
        // Derive the key exactly as the serving path would, so the
        // pushed entry later answers the genuine request below.
        let genuine = r#"{"op":"certify","lattice":"two","source":"var x : integer; x := 0"}"#;
        let req = Request::parse(genuine).unwrap();
        let key = cache_key(&req, Limits::default().max_fuel);
        let value = CachedResult {
            ok: true,
            fields: vec![("certified".to_string(), Json::Bool(true))],
        };
        let payload = String::from_utf8(encode_record(key.hash, &key.canon, &value)).unwrap();
        let push = format!(
            r#"{{"op":"replicate","payload":{}}}"#,
            Json::Str(payload.clone())
        );
        let v = Json::parse(&s.handle_line(&push)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("installed").and_then(Json::as_bool), Some(true));
        assert_eq!(s.metrics.cluster_replica_installs.load(Relaxed), 1);
        assert_eq!(s.cache_len(), 1);

        // The same push again is acknowledged but installs nothing —
        // no journal growth, no metric movement (repair idempotence).
        let v2 = Json::parse(&s.handle_line(&push)).unwrap();
        assert_eq!(v2.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v2.get("installed").and_then(Json::as_bool), Some(false));
        assert_eq!(s.metrics.cluster_replica_installs.load(Relaxed), 1);
        assert_eq!(s.cache_len(), 1);

        // A forged fingerprint is refused at the verification gate.
        let forged = String::from_utf8(encode_record(key.hash ^ 1, &key.canon, &value)).unwrap();
        let bad = format!(r#"{{"op":"replicate","payload":{}}}"#, Json::Str(forged));
        let v3 = Json::parse(&s.handle_line(&bad)).unwrap();
        assert_eq!(v3.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v3.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("protocol")
        );
        assert_eq!(s.cache_len(), 1, "forgeries never touch the cache");

        // The installed entry now serves a genuine request as cached.
        let v4 = Json::parse(&s.handle_line(genuine)).unwrap();
        assert_eq!(v4.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(v4.get("certified").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn over_budget_forwards_are_refused_with_a_structured_error() {
        let s = svc();
        let inner = line(LEAKY, r#"{}"#);
        let outer = format!(
            r#"{{"op":"forward","req":{},"hops":99}}"#,
            Json::Str(inner.clone())
        );
        let v = Json::parse(&s.handle_line(&outer)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("max_hops_exhausted")
        );
        // The refusal is about the forward, not the inner op — it must
        // not look like an inner-shaped reply, so the sender's relay
        // path advances to its next candidate instead of caching it.
        assert!(v.get("op").is_none());
        assert_eq!(s.metrics.cluster_forward_hop_exhausted.load(Relaxed), 1);
        assert_eq!(s.cache_len(), 0, "nothing was computed or cached");

        // At the budget (the legitimate maximum a conforming sender
        // emits), the request still computes.
        let at_budget = format!(
            r#"{{"op":"forward","req":{},"hops":{}}}"#,
            Json::Str(inner),
            DEFAULT_MAX_HOPS
        );
        let v2 = Json::parse(&s.handle_line(&at_budget)).unwrap();
        assert_eq!(v2.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v2.get("certified").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn stats_cluster_object_reports_digest_and_hint_backlog() {
        let s = svc();
        s.handle_line(&line(LEAKY, r#"{}"#));
        let stats = Json::parse(&s.handle_line(r#"{"op":"stats"}"#)).unwrap();
        let cluster = stats.get("cluster").expect("stats carries cluster");
        assert_eq!(
            cluster.get("shard_digest").and_then(Json::as_str),
            Some(format!("{:016x}", s.shard_digest()).as_str())
        );
        assert_eq!(cluster.get("hints_pending").and_then(Json::as_u64), Some(0));
        // Standalone: no peers array (there is no failure detector).
        assert!(cluster.get("peers").is_none());

        // Clustered: every peer shows with a health state.
        let peers = ["127.0.0.1:7401", "127.0.0.1:7402"];
        let mut cfg = ClusterConfig::new(&peers);
        cfg.self_addr = Some(peers[0].to_string());
        let c = Service::new(16, Limits::default()).with_cluster(cfg);
        let stats = Json::parse(&c.handle_line(r#"{"op":"stats"}"#)).unwrap();
        let reported = stats
            .get("cluster")
            .and_then(|v| v.get("peers"))
            .and_then(Json::as_arr)
            .expect("clustered stats carry a peers array");
        assert_eq!(reported.len(), 1, "self is not its own peer");
        assert_eq!(
            reported[0].get("addr").and_then(Json::as_str),
            Some(peers[1])
        );
        assert_eq!(reported[0].get("health").and_then(Json::as_str), Some("up"));
        assert_eq!(reported[0].get("last_seen_ms"), Some(&Json::Null));
    }

    #[test]
    fn down_replicas_get_hints_instead_of_sockets() {
        // rf=2 over two nodes: every key's replica set is both nodes,
        // so every fresh computation owes the other node a push. With
        // the peer marked DOWN the push becomes a hint — no socket is
        // ever opened (the addresses are unroutable; a connect attempt
        // would eat seconds of timeout).
        let peers = ["127.0.0.1:7501", "127.0.0.1:7502"];
        let mut cfg = ClusterConfig::new(&peers);
        cfg.self_addr = Some(peers[0].to_string());
        cfg.replication = 2;
        let s = Service::new(16, Limits::default()).with_cluster(cfg);
        for _ in 0..crate::health::DEFAULT_FAILURE_THRESHOLD {
            s.cluster
                .as_ref()
                .unwrap()
                .health()
                .record_failure(peers[1]);
        }
        let started = Instant::now();
        let v = Json::parse(&s.handle_line(&line(LEAKY, r#"{}"#))).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "a DOWN replica must not cost a connect timeout"
        );
        assert_eq!(s.hints_pending(), 1);
        assert_eq!(s.metrics.cluster_hints_queued.load(Relaxed), 1);
        assert_eq!(s.metrics.cluster_replicas_sent.load(Relaxed), 0);
        let stats = Json::parse(&s.handle_line(r#"{"op":"stats"}"#)).unwrap();
        assert_eq!(
            stats
                .get("cluster")
                .and_then(|c| c.get("hints_pending"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }
}
