//! Hinted handoff: a bounded journal of replica writes owed to peers
//! that were DOWN when the primary tried to push them.
//!
//! When replication (or a hint drain) cannot reach a replica, the
//! record payload is queued here under the replica's address instead
//! of being lost. The health probe loop drains a peer's hints the
//! moment the failure detector readmits it, so a briefly-dead replica
//! catches up from its peers' hint queues without any anti-entropy
//! scan. Hints that outlive the budget are dropped oldest-first —
//! `repair` (full digest comparison + `peer-sync` pull) is the
//! backstop for anything handoff misses, so the queue can afford to be
//! strictly bounded. See `DESIGN.md` §15.
//!
//! On disk (when the node runs with `--cache-dir`), hints live in
//! `hints.log` next to the journal, framed with the same
//! `len | crc | payload` codec ([`crate::persist::encode_frame`]); the
//! payload is `{"p":"<peer addr>","e":"<journal record payload>"}`.
//! Recovery reuses the lenient raw-frame scan, so a torn tail costs
//! the torn hint only. The store is best-effort durable: a crash
//! mid-rewrite loses queued hints, which `repair` again covers.

use std::collections::VecDeque;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json::Json;
use crate::persist::{encode_frame, scan_raw_frames};

/// Default byte budget for queued hints (payload + address bytes).
pub const DEFAULT_HINT_BYTES: u64 = 4 << 20;

/// Hint journal file name inside the cache directory.
pub const HINTS_FILE: &str = "hints.log";

/// Per-hint bookkeeping overhead charged against the budget, so a
/// flood of tiny hints cannot hold unbounded queue slots.
const HINT_OVERHEAD: u64 = 16;

struct Inner {
    /// Oldest first; drained front-to-back so replay order matches
    /// write order (later records win in the receiver's cache).
    hints: VecDeque<(String, String)>,
    bytes: u64,
    /// Backing file; `None` = memory-only (no `--cache-dir`).
    path: Option<PathBuf>,
}

/// Bounded, optionally disk-backed hint queue. Thread-safe; lives in
/// [`crate::service::Service`].
pub struct HintStore {
    inner: Mutex<Inner>,
    max_bytes: u64,
}

fn cost(peer: &str, payload: &str) -> u64 {
    peer.len() as u64 + payload.len() as u64 + HINT_OVERHEAD
}

fn encode_hint(peer: &str, payload: &str) -> Vec<u8> {
    Json::Obj(vec![
        ("p".to_string(), Json::Str(peer.to_string())),
        ("e".to_string(), Json::Str(payload.to_string())),
    ])
    .to_string()
    .into_bytes()
}

fn decode_hint(bytes: &[u8]) -> Option<(String, String)> {
    let v = Json::parse(std::str::from_utf8(bytes).ok()?).ok()?;
    Some((
        v.get("p")?.as_str()?.to_string(),
        v.get("e")?.as_str()?.to_string(),
    ))
}

impl HintStore {
    /// A memory-only store with the given byte budget.
    pub fn new(max_bytes: u64) -> HintStore {
        HintStore {
            inner: Mutex::new(Inner {
                hints: VecDeque::new(),
                bytes: 0,
                path: None,
            }),
            max_bytes,
        }
    }

    /// A disk-backed store: recovers any hints in `dir/hints.log`
    /// (leniently — corrupt frames skip) and appends new ones there.
    pub fn open(dir: &Path, max_bytes: u64) -> HintStore {
        let path = dir.join(HINTS_FILE);
        let mut hints = VecDeque::new();
        let mut bytes = 0u64;
        if let Ok(file) = std::fs::read(&path) {
            let (payloads, _skipped) = scan_raw_frames(&file);
            for payload in payloads {
                if let Some((peer, record)) = decode_hint(&payload) {
                    bytes += cost(&peer, &record);
                    hints.push_back((peer, record));
                }
            }
        }
        let store = HintStore {
            inner: Mutex::new(Inner {
                hints,
                bytes,
                path: Some(path),
            }),
            max_bytes,
        };
        {
            // Enforce the budget over whatever recovery found, then
            // rewrite so the file reflects the bounded queue.
            let mut inner = store.inner.lock().unwrap();
            store.enforce_budget(&mut inner);
            store.rewrite(&inner);
        }
        store
    }

    /// Queues one record payload owed to `peer`. Returns how many older
    /// hints were dropped to stay inside the budget (0 normally; the
    /// caller meters drops). A hint larger than the whole budget is
    /// itself dropped immediately (returns 1).
    pub fn queue(&self, peer: &str, payload: &str) -> u64 {
        let c = cost(peer, payload);
        let mut inner = self.inner.lock().unwrap();
        if c > self.max_bytes {
            return 1;
        }
        inner
            .hints
            .push_back((peer.to_string(), payload.to_string()));
        inner.bytes += c;
        let dropped = self.enforce_budget(&mut inner);
        if dropped == 0 {
            if let (Some(path), false) = (&inner.path, inner.hints.is_empty()) {
                let frame = encode_frame(&encode_hint(peer, payload));
                if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(path) {
                    let _ = f.write_all(&frame);
                }
            }
        } else {
            self.rewrite(&inner);
        }
        dropped
    }

    /// Removes and returns every hint owed to `peer`, oldest first. The
    /// caller delivers them; any it cannot deliver should come back via
    /// [`queue`](Self::queue) (undelivered hints re-queue at the back —
    /// order across a failed drain is repaired by the receiver's
    /// last-write-wins replay, not by the queue).
    pub fn take_for(&self, peer: &str) -> Vec<String> {
        let mut inner = self.inner.lock().unwrap();
        let mut taken = Vec::new();
        let mut kept = VecDeque::with_capacity(inner.hints.len());
        for (p, payload) in inner.hints.drain(..) {
            if p == peer {
                taken.push(payload);
            } else {
                kept.push_back((p, payload));
            }
        }
        inner.hints = kept;
        if !taken.is_empty() {
            inner.bytes = inner.hints.iter().map(|(p, e)| cost(p, e)).sum();
            self.rewrite(&inner);
        }
        taken
    }

    /// Distinct peers currently owed hints, sorted.
    pub fn peers_with_hints(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap();
        let mut peers: Vec<String> = inner.hints.iter().map(|(p, _)| p.clone()).collect();
        peers.sort();
        peers.dedup();
        peers
    }

    /// Hints currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().hints.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged against the budget.
    pub fn bytes(&self) -> u64 {
        self.inner.lock().unwrap().bytes
    }

    /// Drops oldest hints until the budget holds; returns the count.
    fn enforce_budget(&self, inner: &mut Inner) -> u64 {
        let mut dropped = 0u64;
        while inner.bytes > self.max_bytes {
            match inner.hints.pop_front() {
                Some((p, e)) => {
                    inner.bytes -= cost(&p, &e);
                    dropped += 1;
                }
                None => break,
            }
        }
        dropped
    }

    /// Rewrites the backing file to match the in-memory queue
    /// (best-effort: an IO error leaves the hints in memory only).
    fn rewrite(&self, inner: &Inner) {
        let Some(path) = &inner.path else { return };
        let mut out = Vec::new();
        for (peer, payload) in &inner.hints {
            out.extend_from_slice(&encode_frame(&encode_hint(peer, payload)));
        }
        let _ = std::fs::write(path, &out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("secflow-hints-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn queue_and_take_preserve_per_peer_order() {
        let store = HintStore::new(1 << 20);
        assert!(store.is_empty());
        assert_eq!(store.queue("b", "b1"), 0);
        assert_eq!(store.queue("a", "a1"), 0);
        assert_eq!(store.queue("b", "b2"), 0);
        assert_eq!(store.len(), 3);
        assert_eq!(store.peers_with_hints(), vec!["a", "b"]);
        assert_eq!(store.take_for("b"), vec!["b1", "b2"]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.take_for("b"), Vec::<String>::new());
        assert_eq!(store.take_for("a"), vec!["a1"]);
        assert!(store.is_empty());
        assert_eq!(store.bytes(), 0);
    }

    #[test]
    fn budget_drops_oldest_first() {
        // Budget fits exactly two of these hints.
        let one = cost("p", "xxxxxxxx");
        let store = HintStore::new(2 * one);
        assert_eq!(store.queue("p", "xxxxxxxx"), 0);
        assert_eq!(store.queue("p", "yyyyyyyy"), 0);
        assert_eq!(store.queue("p", "zzzzzzzz"), 1, "third hint evicts oldest");
        assert_eq!(store.take_for("p"), vec!["yyyyyyyy", "zzzzzzzz"]);

        // A hint bigger than the whole budget never enters the queue.
        let tiny = HintStore::new(8);
        assert_eq!(tiny.queue("p", "way too large for the budget"), 1);
        assert!(tiny.is_empty());
    }

    #[test]
    fn disk_backed_store_survives_reopen_and_tolerates_corruption() {
        let dir = tmp_dir("reopen");
        let store = HintStore::open(&dir, 1 << 20);
        store.queue("127.0.0.1:4602", "{\"h\":\"aa\"}");
        store.queue("127.0.0.1:4603", "{\"h\":\"bb\"}");
        drop(store);

        let reopened = HintStore::open(&dir, 1 << 20);
        assert_eq!(reopened.len(), 2);
        assert_eq!(
            reopened.peers_with_hints(),
            vec!["127.0.0.1:4602", "127.0.0.1:4603"]
        );
        assert_eq!(reopened.take_for("127.0.0.1:4602"), vec!["{\"h\":\"aa\"}"]);
        drop(reopened);

        // The rewrite after take_for means a fresh open owes only one.
        let again = HintStore::open(&dir, 1 << 20);
        assert_eq!(again.len(), 1);
        drop(again);

        // Tear the file's tail: recovery keeps the valid prefix.
        let path = dir.join(HINTS_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[9, 9, 9]);
        std::fs::write(&path, &bytes).unwrap();
        let torn = HintStore::open(&dir, 1 << 20);
        assert_eq!(torn.len(), 1, "torn tail costs nothing already framed");

        // A missing directory file is an empty store, not an error.
        let empty = HintStore::open(&tmp_dir("fresh"), 1 << 20);
        assert!(empty.is_empty());
    }

    #[test]
    fn reopen_enforces_the_budget() {
        let dir = tmp_dir("budget");
        let big = HintStore::open(&dir, 1 << 20);
        for i in 0..10 {
            big.queue("p", &format!("payload number {i}"));
        }
        drop(big);
        // Reopen with a budget that fits only a few: oldest go first.
        let small = HintStore::open(&dir, 3 * cost("p", "payload number 0"));
        assert!(small.len() < 10);
        let taken = small.take_for("p");
        assert_eq!(taken.last().map(String::as_str), Some("payload number 9"));
    }
}
