//! Crash-safe durable result store: an append-only write-ahead journal
//! of cache entries, compacted periodically into a snapshot file.
//!
//! CFM certification is deterministic and content-addressed (paper
//! §6.0: the verdict is a pure function of the canonical request text),
//! so every cached verdict is permanently valid. This module makes the
//! result cache survive restarts, panic-recycles and `kill -9`:
//!
//! - **Journal** (`journal.wal`): every newly computed result is
//!   appended as one length-prefixed, CRC32-framed record before the
//!   response is considered durable. Appends are plain `write(2)` calls
//!   (no userspace buffering), optionally followed by `fsync` per
//!   [`FsyncMode`].
//! - **Snapshot** (`snapshot.sfs`): when the journal outgrows
//!   [`PersistConfig::journal_max_bytes`], the live cache contents are
//!   written to `snapshot.tmp`, fsynced, atomically renamed over the
//!   old snapshot, and the journal is truncated (see [`crate::snapshot`]
//!   for the publication protocol and its crash-consistency argument).
//! - **Recovery**: on open, the snapshot is replayed first, then the
//!   journal; later records win. Torn writes, truncated tails,
//!   bit-flipped records and leftover `snapshot.tmp` files are
//!   *skipped* (counted in [`PersistStats::frames_skipped`]), never
//!   fatal and never served: a frame either passes its CRC or
//!   contributes nothing.
//!
//! # Frame format
//!
//! ```text
//! +----------------+----------------+------------------+
//! | len: u32 LE    | crc: u32 LE    | payload (len B)  |
//! +----------------+----------------+------------------+
//! ```
//!
//! `crc` is IEEE CRC-32 of the payload. The payload is one JSON object
//! `{"h":"<16-hex key hash>","c":"<canonical request text>",
//! "ok":bool,"f":{…response fields…}}` — the exact data
//! [`crate::service`] needs to re-render a byte-identical response.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cache::{CacheKey, CachedResult};
use crate::fault::{Faults, NoFaults};
use crate::json::Json;

/// Journal file name inside the cache directory.
pub const JOURNAL_FILE: &str = "journal.wal";
/// Published snapshot file name inside the cache directory.
pub const SNAPSHOT_FILE: &str = "snapshot.sfs";
/// In-progress (unpublished) snapshot; ignored and removed on open.
pub const SNAPSHOT_TMP_FILE: &str = "snapshot.tmp";

/// Hard cap on one record's payload; a length field beyond this is
/// garbage (a torn or overwritten header), not a real frame.
pub const MAX_RECORD_BYTES: u32 = 64 << 20;

/// When to `fsync` the journal after an append.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FsyncMode {
    /// Sync after every append: a record is durable before its response
    /// leaves the server. Slowest, zero-loss.
    Always,
    /// Sync at most every [`SYNC_INTERVAL`] (or every
    /// [`SYNC_EVERY_APPENDS`] appends, whichever comes first): bounded
    /// loss window, near-`Never` throughput.
    Interval,
    /// Never sync explicitly; the OS flushes when it pleases. A host
    /// crash may lose recent records (a process crash does not: appends
    /// are unbuffered writes).
    Never,
}

impl FsyncMode {
    /// Parses the CLI spelling (`always` | `interval` | `never`).
    pub fn parse(s: &str) -> Result<FsyncMode, String> {
        match s {
            "always" => Ok(FsyncMode::Always),
            "interval" => Ok(FsyncMode::Interval),
            "never" => Ok(FsyncMode::Never),
            other => Err(format!(
                "bad fsync mode `{other}` (always | interval | never)"
            )),
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            FsyncMode::Always => "always",
            FsyncMode::Interval => "interval",
            FsyncMode::Never => "never",
        }
    }
}

/// Longest time `FsyncMode::Interval` lets appends ride unsynced.
pub const SYNC_INTERVAL: Duration = Duration::from_millis(500);
/// Most appends `FsyncMode::Interval` lets ride unsynced.
pub const SYNC_EVERY_APPENDS: u64 = 64;

/// Configuration for a [`DurableStore`].
#[derive(Clone, Debug)]
pub struct PersistConfig {
    /// Directory holding the journal and snapshot. Must already exist
    /// and be writable (the CLI validates this up front).
    pub dir: PathBuf,
    /// Journal size that triggers compaction into a snapshot
    /// (0 disables compaction; the journal grows without bound).
    pub journal_max_bytes: u64,
    /// When appended records are fsynced.
    pub fsync: FsyncMode,
}

impl PersistConfig {
    /// A config with default tuning (8 MiB journal, interval fsync).
    pub fn new(dir: impl Into<PathBuf>) -> PersistConfig {
        PersistConfig {
            dir: dir.into(),
            journal_max_bytes: 8 << 20,
            fsync: FsyncMode::Interval,
        }
    }
}

/// Counters describing the store's history, reported as the `persist`
/// object of the `stats` response.
#[derive(Clone, Copy, Default, Debug)]
pub struct PersistStats {
    /// Distinct entries loaded into the cache at the last recovery.
    pub entries_recovered: u64,
    /// Corrupt/torn frames skipped during recovery (cumulative over
    /// recoveries performed by this store instance).
    pub frames_skipped: u64,
    /// Current journal size in bytes.
    pub journal_bytes: u64,
    /// Snapshot compactions performed by this instance.
    pub compactions: u64,
    /// Wall time of the last recovery, in microseconds.
    pub last_recovery_us: u64,
    /// Journal appends that failed with an IO error (the result stays
    /// served from memory; durability for that entry is lost).
    pub io_errors: u64,
    /// Chaos-injected torn writes (tests only; 0 in production).
    pub torn_writes: u64,
    /// Chaos-injected skipped fsyncs (tests only; 0 in production).
    pub short_fsyncs: u64,
}

impl PersistStats {
    /// The `persist` stats object spliced into `stats` responses.
    pub fn fields(&self) -> Vec<(String, Json)> {
        let n = |v: u64| Json::Num(v as f64);
        vec![
            ("entries_recovered".to_string(), n(self.entries_recovered)),
            ("frames_skipped".to_string(), n(self.frames_skipped)),
            ("journal_bytes".to_string(), n(self.journal_bytes)),
            ("compactions".to_string(), n(self.compactions)),
            (
                "last_recovery_ms".to_string(),
                Json::Num(self.last_recovery_us as f64 / 1000.0),
            ),
            ("io_errors".to_string(), n(self.io_errors)),
            ("torn_writes".to_string(), n(self.torn_writes)),
            ("short_fsyncs".to_string(), n(self.short_fsyncs)),
        ]
    }
}

/// One cache entry reconstructed from disk.
#[derive(Clone, Debug)]
pub struct RecoveredEntry {
    /// The content address it was cached under.
    pub key: CacheKey,
    /// The cached response payload.
    pub value: CachedResult,
}

/// Outcome of scanning one frame file (journal or snapshot).
#[derive(Default)]
pub struct ScanOutcome {
    /// Decoded entries, in file order (duplicates preserved; the caller
    /// replays them in order so later records win).
    pub entries: Vec<RecoveredEntry>,
    /// Frames rejected: CRC mismatch, truncated tail, garbage length,
    /// or an undecodable payload.
    pub skipped: u64,
    /// Total bytes in the file.
    pub bytes: u64,
}

// ---- CRC-32 (IEEE, reflected) ------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// IEEE CRC-32 of `bytes` (the frame checksum).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = (c >> 8) ^ CRC_TABLE[((c ^ b as u32) & 0xff) as usize];
    }
    !c
}

// ---- record codec -------------------------------------------------------

/// Serializes one cache entry into a frame payload.
pub fn encode_record(hash: u64, canon: &str, value: &CachedResult) -> Vec<u8> {
    Json::Obj(vec![
        ("h".to_string(), Json::Str(format!("{hash:016x}"))),
        ("c".to_string(), Json::Str(canon.to_string())),
        ("ok".to_string(), Json::Bool(value.ok)),
        ("f".to_string(), Json::Obj(value.fields.clone())),
    ])
    .to_string()
    .into_bytes()
}

/// Decodes a frame payload back into an entry (`None` on any shape
/// mismatch — a CRC-valid but unparseable record is still skipped, not
/// fatal).
pub fn decode_record(payload: &[u8]) -> Option<RecoveredEntry> {
    let text = std::str::from_utf8(payload).ok()?;
    let v = Json::parse(text).ok()?;
    let hash = u64::from_str_radix(v.get("h")?.as_str()?, 16).ok()?;
    let canon = v.get("c")?.as_str()?.to_string();
    let ok = v.get("ok")?.as_bool()?;
    let fields = v.get("f")?.as_obj()?.to_vec();
    Some(RecoveredEntry {
        key: CacheKey { hash, canon },
        value: CachedResult { ok, fields },
    })
}

/// Wraps a payload in a `len | crc | payload` frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Scans a whole frame file leniently: CRC-failed frames are skipped
/// individually (their length header still locates the next frame);
/// torn tails and garbage lengths end the scan (the longest valid
/// prefix wins). Never errors on content — only on unreadable files.
pub fn scan_frames(bytes: &[u8]) -> ScanOutcome {
    let mut out = ScanOutcome {
        bytes: bytes.len() as u64,
        ..ScanOutcome::default()
    };
    let mut offset = 0usize;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < 8 {
            // Torn tail: a partial header can never frame a record.
            out.skipped += 1;
            break;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if len > MAX_RECORD_BYTES || (len as usize) > remaining - 8 {
            // Garbage or truncated length: we cannot trust any byte
            // after this point, so stop at the valid prefix.
            out.skipped += 1;
            break;
        }
        let payload = &bytes[offset + 8..offset + 8 + len as usize];
        offset += 8 + len as usize;
        if crc32(payload) != crc {
            out.skipped += 1; // bit flip in payload or CRC: skip one frame
            continue;
        }
        match decode_record(payload) {
            Some(entry) => out.entries.push(entry),
            None => out.skipped += 1,
        }
    }
    out
}

/// Scans a frame file whose payloads are opaque to this module (the
/// hint journal reuses the frame codec around its own payloads). Same
/// lenience as [`scan_frames`] — CRC-failed frames skip, torn tails
/// and garbage lengths end the scan — but payloads are returned raw
/// instead of being decoded as cache records. Returns `(payloads,
/// skipped)`.
pub fn scan_raw_frames(bytes: &[u8]) -> (Vec<Vec<u8>>, u64) {
    let mut payloads = Vec::new();
    let mut skipped = 0u64;
    let mut offset = 0usize;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < 8 {
            skipped += 1;
            break;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if len > MAX_RECORD_BYTES || (len as usize) > remaining - 8 {
            skipped += 1;
            break;
        }
        let payload = &bytes[offset + 8..offset + 8 + len as usize];
        offset += 8 + len as usize;
        if crc32(payload) != crc {
            skipped += 1;
            continue;
        }
        payloads.push(payload.to_vec());
    }
    (payloads, skipped)
}

/// Reads and scans one frame file; a missing file is an empty scan.
pub fn scan_file(path: &Path) -> io::Result<ScanOutcome> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
            Ok(scan_frames(&bytes))
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(ScanOutcome::default()),
        Err(e) => Err(e),
    }
}

// ---- the store ----------------------------------------------------------

/// The durable side of the result cache: owns the journal file handle
/// and the compaction/recovery machinery. Lives behind a `Mutex` in
/// [`crate::service::Service`].
pub struct DurableStore {
    cfg: PersistConfig,
    journal: File,
    journal_bytes: u64,
    appends_since_sync: u64,
    last_sync: Instant,
    faults: Arc<dyn Faults>,
    stats: PersistStats,
    recovered: Vec<RecoveredEntry>,
}

impl DurableStore {
    /// Opens (or creates) the store in `cfg.dir` and runs recovery.
    /// The recovered entries wait in [`DurableStore::drain_recovered`]
    /// for the service to replay into its cache.
    pub fn open(cfg: PersistConfig) -> io::Result<DurableStore> {
        DurableStore::open_with_faults(cfg, Arc::new(NoFaults))
    }

    /// [`open`](DurableStore::open) with chaos hooks (torn writes and
    /// skipped fsyncs) wired in; production uses [`NoFaults`].
    pub fn open_with_faults(
        cfg: PersistConfig,
        faults: Arc<dyn Faults>,
    ) -> io::Result<DurableStore> {
        let begin = Instant::now();
        // A leftover snapshot.tmp is an unpublished, possibly torn
        // compaction: discard it (the published snapshot + journal are
        // still complete).
        let _ = std::fs::remove_file(cfg.dir.join(SNAPSHOT_TMP_FILE));
        let snapshot = scan_file(&cfg.dir.join(SNAPSHOT_FILE))?;
        let journal_scan = scan_file(&cfg.dir.join(JOURNAL_FILE))?;
        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(cfg.dir.join(JOURNAL_FILE))?;
        let journal_bytes = journal.metadata()?.len();
        let mut recovered = snapshot.entries;
        recovered.extend(journal_scan.entries);
        let stats = PersistStats {
            frames_skipped: snapshot.skipped + journal_scan.skipped,
            journal_bytes,
            last_recovery_us: begin.elapsed().as_micros().min(u64::MAX as u128) as u64,
            ..PersistStats::default()
        };
        Ok(DurableStore {
            cfg,
            journal,
            journal_bytes,
            appends_since_sync: 0,
            last_sync: Instant::now(),
            faults,
            stats,
            recovered,
        })
    }

    /// Takes the entries recovered at open time (in replay order:
    /// snapshot first, then journal; later duplicates win when replayed
    /// through `ResultCache::put`).
    pub fn drain_recovered(&mut self) -> Vec<RecoveredEntry> {
        std::mem::take(&mut self.recovered)
    }

    /// Records how many distinct entries the service actually loaded.
    pub fn set_entries_recovered(&mut self, n: u64) {
        self.stats.entries_recovered = n;
    }

    /// Current counters (journal size kept live).
    pub fn stats(&self) -> PersistStats {
        let mut s = self.stats;
        s.journal_bytes = self.journal_bytes;
        s
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Appends one entry to the journal. On IO error the entry simply
    /// is not durable (counted in `io_errors`); the in-memory cache
    /// still serves it.
    pub fn append(&mut self, key: &CacheKey, value: &CachedResult) -> io::Result<()> {
        let frame = encode_frame(&encode_record(key.hash, &key.canon, value));
        let write = if self.faults.torn_write() {
            // Chaos: pretend the frame was written but tear it in half,
            // as a crash mid-write(2) would. Recovery must skip it.
            self.stats.torn_writes += 1;
            self.journal.write_all(&frame[..frame.len() / 2])
        } else {
            self.journal.write_all(&frame)
        };
        if let Err(e) = write {
            self.stats.io_errors += 1;
            return Err(e);
        }
        // Refresh from the file: torn writes grow it by less than a
        // full frame, and append mode means others never shrink it.
        self.journal_bytes = self
            .journal
            .metadata()
            .map_or(self.journal_bytes, |m| m.len());
        self.appends_since_sync += 1;
        let due = match self.cfg.fsync {
            FsyncMode::Always => true,
            FsyncMode::Interval => {
                self.appends_since_sync >= SYNC_EVERY_APPENDS
                    || self.last_sync.elapsed() >= SYNC_INTERVAL
            }
            FsyncMode::Never => false,
        };
        if due {
            if self.faults.short_fsync() {
                // Chaos: an fsync the firmware lied about. Nothing to
                // observe in-process; recovery tolerance covers it.
                self.stats.short_fsyncs += 1;
            } else if let Err(e) = self.journal.sync_all() {
                self.stats.io_errors += 1;
                return Err(e);
            }
            self.appends_since_sync = 0;
            self.last_sync = Instant::now();
        }
        Ok(())
    }

    /// Whether the journal has outgrown its budget and a compaction
    /// should run.
    pub fn wants_compaction(&self) -> bool {
        self.cfg.journal_max_bytes > 0 && self.journal_bytes > self.cfg.journal_max_bytes
    }

    /// Compacts `live` (the cache's current entries, oldest first) into
    /// a freshly published snapshot and truncates the journal. See
    /// [`crate::snapshot::publish_snapshot`] for the crash-consistency
    /// protocol. Entries evicted from the cache are dropped here — they
    /// were recoverable from the journal until this moment (documented
    /// semantics; see DESIGN §10).
    pub fn compact(&mut self, live: &[(u64, String, CachedResult)]) -> io::Result<()> {
        let durable = self.cfg.fsync != FsyncMode::Never;
        crate::snapshot::publish_snapshot(&self.cfg.dir, live, durable)?;
        // The snapshot now holds everything worth keeping: reset the
        // journal. An append-mode handle ignores seek positions, so
        // truncating the shared handle is safe.
        self.journal.set_len(0)?;
        if durable {
            if self.faults.short_fsync() {
                self.stats.short_fsyncs += 1;
            } else {
                self.journal.sync_all()?;
            }
        }
        self.journal_bytes = 0;
        self.appends_since_sync = 0;
        self.stats.compactions += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("secflow-persist-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(tag: &str) -> (CacheKey, CachedResult) {
        let key = CacheKey::of(&["certify", tag]);
        let value = CachedResult {
            ok: true,
            fields: vec![
                (
                    "certified".to_string(),
                    Json::Bool(tag.len().is_multiple_of(2)),
                ),
                ("checks".to_string(), Json::Num(tag.len() as f64)),
                (
                    "report".to_string(),
                    Json::Str(format!("report for {tag}\nline 2")),
                ),
            ],
        };
        (key, value)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_round_trips_exactly() {
        let (key, value) = entry("alpha");
        let payload = encode_record(key.hash, &key.canon, &value);
        let back = decode_record(&payload).unwrap();
        assert_eq!(back.key.hash, key.hash);
        assert_eq!(back.key.canon, key.canon);
        assert_eq!(back.value.ok, value.ok);
        assert_eq!(back.value.fields, value.fields);
    }

    #[test]
    fn journal_appends_and_recovers_in_order() {
        let dir = tmp_dir("order");
        let mut store = DurableStore::open(PersistConfig::new(&dir)).unwrap();
        for tag in ["a", "b", "c"] {
            let (key, value) = entry(tag);
            store.append(&key, &value).unwrap();
        }
        drop(store); // no graceful shutdown needed

        let mut reopened = DurableStore::open(PersistConfig::new(&dir)).unwrap();
        let entries = reopened.drain_recovered();
        assert_eq!(entries.len(), 3);
        assert_eq!(reopened.stats().frames_skipped, 0);
        let canons: Vec<&str> = entries.iter().map(|e| e.key.canon.as_str()).collect();
        assert_eq!(canons[0], entry("a").0.canon);
        assert_eq!(canons[2], entry("c").0.canon);
    }

    #[test]
    fn flipped_payload_byte_skips_exactly_one_frame() {
        let dir = tmp_dir("flip");
        let mut store = DurableStore::open(PersistConfig::new(&dir)).unwrap();
        for tag in ["a", "b", "c"] {
            let (key, value) = entry(tag);
            store.append(&key, &value).unwrap();
        }
        drop(store);
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xFF; // inside the first frame's payload
        std::fs::write(&path, &bytes).unwrap();

        let mut reopened = DurableStore::open(PersistConfig::new(&dir)).unwrap();
        let entries = reopened.drain_recovered();
        assert_eq!(reopened.stats().frames_skipped, 1);
        assert_eq!(entries.len(), 2, "frames after the flip still recover");
        assert_eq!(entries[0].key.canon, entry("b").0.canon);
    }

    #[test]
    fn torn_tail_recovers_the_valid_prefix() {
        let dir = tmp_dir("torn");
        let mut store = DurableStore::open(PersistConfig::new(&dir)).unwrap();
        for tag in ["a", "b"] {
            let (key, value) = entry(tag);
            store.append(&key, &value).unwrap();
        }
        drop(store);
        let path = dir.join(JOURNAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap(); // tear mid-frame

        let mut reopened = DurableStore::open(PersistConfig::new(&dir)).unwrap();
        let entries = reopened.drain_recovered();
        assert_eq!(entries.len(), 1);
        assert_eq!(reopened.stats().frames_skipped, 1);
        // The store stays appendable after a torn tail: new records land
        // after the tear and recovery of *those* is then blocked by the
        // bad frame — which is exactly why compaction exists. Verify the
        // append itself never errors.
        let (key, value) = entry("после");
        reopened.append(&key, &value).unwrap();
    }

    #[test]
    fn garbage_length_field_stops_at_the_valid_prefix() {
        let dir = tmp_dir("len");
        let mut store = DurableStore::open(PersistConfig::new(&dir)).unwrap();
        let (key, value) = entry("a");
        store.append(&key, &value).unwrap();
        drop(store);
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Append a frame whose length field claims 4 GiB.
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0, 0, 0, 0, 1, 2, 3]);
        std::fs::write(&path, &bytes).unwrap();

        let mut reopened = DurableStore::open(PersistConfig::new(&dir)).unwrap();
        assert_eq!(reopened.drain_recovered().len(), 1);
        assert_eq!(reopened.stats().frames_skipped, 1);
    }

    #[test]
    fn raw_frame_scan_returns_opaque_payloads() {
        let mut file = Vec::new();
        file.extend_from_slice(&encode_frame(b"not a cache record"));
        file.extend_from_slice(&encode_frame(b"{\"p\":\"peer\",\"e\":\"x\"}"));
        let (payloads, skipped) = scan_raw_frames(&file);
        assert_eq!(skipped, 0);
        assert_eq!(
            payloads.len(),
            2,
            "payload shape is not this module's business"
        );
        assert_eq!(payloads[0], b"not a cache record");

        // Same lenience as the record scan: a flipped byte skips one
        // frame, a torn tail ends at the valid prefix.
        let mut flipped = file.clone();
        flipped[10] ^= 0xFF;
        let (payloads, skipped) = scan_raw_frames(&flipped);
        assert_eq!((payloads.len(), skipped), (1, 1));
        let (payloads, skipped) = scan_raw_frames(&file[..file.len() - 3]);
        assert_eq!((payloads.len(), skipped), (1, 1));
        let (payloads, skipped) = scan_raw_frames(&[]);
        assert!(payloads.is_empty());
        assert_eq!(skipped, 0);
    }

    #[test]
    fn empty_and_missing_stores_recover_clean() {
        let dir = tmp_dir("empty");
        let mut store = DurableStore::open(PersistConfig::new(&dir)).unwrap();
        assert!(store.drain_recovered().is_empty());
        assert_eq!(store.stats().frames_skipped, 0);
        assert_eq!(store.stats().journal_bytes, 0);
    }

    #[test]
    fn chaos_torn_write_is_skipped_on_recovery() {
        let dir = tmp_dir("chaos-torn");
        let mut plan = FaultPlan::new(11);
        plan.torn_write_per_mille = 1000;
        plan.max_faults = 1; // tear exactly the first append
        let mut store =
            DurableStore::open_with_faults(PersistConfig::new(&dir), Arc::new(plan)).unwrap();
        for tag in ["a", "b", "c"] {
            let (key, value) = entry(tag);
            store.append(&key, &value).unwrap();
        }
        assert_eq!(store.stats().torn_writes, 1);
        drop(store);

        let mut reopened = DurableStore::open(PersistConfig::new(&dir)).unwrap();
        let entries = reopened.drain_recovered();
        // The torn first frame consumed part of the second one's bytes;
        // whatever survives must be CRC-clean and the scan non-fatal.
        assert!(reopened.stats().frames_skipped >= 1);
        for e in &entries {
            assert!(e.key.canon.contains("certify"));
        }
    }

    #[test]
    fn fsync_modes_all_append_and_recover() {
        for mode in [FsyncMode::Always, FsyncMode::Interval, FsyncMode::Never] {
            let dir = tmp_dir(&format!("fsync-{}", mode.name()));
            let cfg = PersistConfig {
                fsync: mode,
                ..PersistConfig::new(&dir)
            };
            let mut store = DurableStore::open(cfg.clone()).unwrap();
            let (key, value) = entry("x");
            store.append(&key, &value).unwrap();
            drop(store);
            let mut reopened = DurableStore::open(cfg).unwrap();
            assert_eq!(reopened.drain_recovered().len(), 1, "{}", mode.name());
        }
    }

    #[test]
    fn fsync_mode_parses_and_rejects() {
        assert_eq!(FsyncMode::parse("always").unwrap(), FsyncMode::Always);
        assert_eq!(FsyncMode::parse("interval").unwrap(), FsyncMode::Interval);
        assert_eq!(FsyncMode::parse("never").unwrap(), FsyncMode::Never);
        assert!(FsyncMode::parse("sometimes").is_err());
    }
}
