//! Content-addressed result cache.
//!
//! Keys are FNV-1a-64 fingerprints of the canonical request text
//! (operation, lattice, binding spec, flags, source). The canonical
//! text is retained in each entry and compared on lookup, so a 64-bit
//! fingerprint collision degrades to a miss instead of serving a wrong
//! result. Eviction is exact LRU via a recency index.

use std::collections::{BTreeMap, HashMap};

use crate::json::Json;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over one byte chunk, continuing from `state`.
pub fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A cache key: fingerprint plus the canonical text it fingerprints.
#[derive(Clone, Debug)]
pub struct CacheKey {
    /// FNV-1a-64 of `canon`.
    pub hash: u64,
    /// The canonical request text (collision guard).
    pub canon: String,
}

impl CacheKey {
    /// Fingerprints the canonical parts of a request. Parts are length-
    /// prefixed so concatenation ambiguity cannot alias two keys.
    pub fn of(parts: &[&str]) -> CacheKey {
        let mut canon = String::new();
        let mut hash = FNV_OFFSET;
        for part in parts {
            let prefix = format!("{}:", part.len());
            hash = fnv1a(hash, prefix.as_bytes());
            hash = fnv1a(hash, part.as_bytes());
            canon.push_str(&prefix);
            canon.push_str(part);
            canon.push('\x1f');
        }
        CacheKey { hash, canon }
    }
}

/// Re-derives the fingerprint of a canonical key text by replaying the
/// [`CacheKey::of`] construction over its length-prefixed parts.
/// Returns `None` when `canon` is not well-formed canonical text — a
/// truncated part, a missing separator, a bad length prefix.
///
/// This is the integrity check for entries that arrive over the wire
/// (`peer-sync` journal shipping): a peer-supplied record whose claimed
/// hash disagrees with `canon_hash(canon)` is forged or corrupt, and
/// accepting it would poison the content-addressed cache.
pub fn canon_hash(canon: &str) -> Option<u64> {
    let bytes = canon.as_bytes();
    let mut hash = FNV_OFFSET;
    let mut at = 0;
    while at < bytes.len() {
        let colon = bytes[at..].iter().position(|&b| b == b':')? + at;
        let len: usize = canon.get(at..colon)?.parse().ok()?;
        let end = (colon + 1).checked_add(len)?;
        if end >= bytes.len() || bytes[end] != 0x1f {
            return None; // truncated part or missing separator
        }
        hash = fnv1a(hash, &bytes[at..end]);
        at = end + 1;
    }
    Some(hash)
}

/// A cached response payload: the fields to splice into a `Response`,
/// plus whether the original run succeeded.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// `ok` of the original response.
    pub ok: bool,
    /// Response fields other than `id`/`ok`/`op`/`cached`.
    pub fields: Vec<(String, Json)>,
}

struct Entry {
    canon: String,
    value: CachedResult,
    stamp: u64,
}

/// Bounded LRU map from request fingerprints to results.
pub struct ResultCache {
    capacity: usize,
    map: HashMap<u64, Entry>,
    recency: BTreeMap<u64, u64>, // stamp -> hash, oldest first
    clock: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            clock: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<CachedResult> {
        let entry = self.map.get_mut(&key.hash)?;
        if entry.canon != key.canon {
            return None; // fingerprint collision: treat as a miss
        }
        self.recency.remove(&entry.stamp);
        self.clock += 1;
        entry.stamp = self.clock;
        self.recency.insert(entry.stamp, key.hash);
        Some(entry.value.clone())
    }

    /// Whether `key` is present (exact canon match), without refreshing
    /// recency — the idempotence check for replica installs, which must
    /// not perturb LRU order or look like traffic.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.map
            .get(&key.hash)
            .is_some_and(|e| e.canon == key.canon)
    }

    /// XOR of every live entry's fingerprint: an order-independent
    /// shard digest. Two nodes with equal digests hold the same entry
    /// set (up to the 64-bit collision odds the cache already accepts),
    /// so anti-entropy can compare shards in O(1) wire bytes.
    pub fn digest(&self) -> u64 {
        self.map.keys().fold(0u64, |acc, h| acc ^ h)
    }

    /// Every live entry as `(hash, canon, value)`, least recently used
    /// first — the order compaction writes them, so a bounded replay
    /// keeps the hottest entries (see [`crate::persist`]).
    pub fn entries(&self) -> Vec<(u64, String, CachedResult)> {
        self.recency
            .values()
            .filter_map(|hash| {
                let entry = self.map.get(hash)?;
                Some((*hash, entry.canon.clone(), entry.value.clone()))
            })
            .collect()
    }

    /// Inserts `value` under `key`, evicting the least recently used
    /// entry if the cache is full.
    pub fn put(&mut self, key: &CacheKey, value: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if let Some(old) = self.map.remove(&key.hash) {
            self.recency.remove(&old.stamp);
        } else if self.map.len() >= self.capacity {
            if let Some((&oldest, &victim)) = self.recency.iter().next() {
                self.recency.remove(&oldest);
                self.map.remove(&victim);
            }
        }
        self.map.insert(
            key.hash,
            Entry {
                canon: key.canon.clone(),
                value,
                stamp: self.clock,
            },
        );
        self.recency.insert(self.clock, key.hash);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: &str) -> CachedResult {
        CachedResult {
            ok: true,
            fields: vec![("tag".to_string(), Json::Str(tag.to_string()))],
        }
    }

    #[test]
    fn fingerprint_is_stable_and_separator_safe() {
        let a = CacheKey::of(&["ab", "c"]);
        let b = CacheKey::of(&["ab", "c"]);
        assert_eq!(a.hash, b.hash);
        assert_eq!(a.canon, b.canon);
        // Same concatenation, different split — must not alias.
        let c = CacheKey::of(&["a", "bc"]);
        assert_ne!(a.canon, c.canon);
        assert_ne!(a.hash, c.hash);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut cache = ResultCache::new(2);
        let (k1, k2, k3) = (
            CacheKey::of(&["1"]),
            CacheKey::of(&["2"]),
            CacheKey::of(&["3"]),
        );
        cache.put(&k1, result("1"));
        cache.put(&k2, result("2"));
        assert!(cache.get(&k1).is_some()); // refresh k1: k2 is now LRU
        cache.put(&k3, result("3"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&k1).is_some());
        assert!(cache.get(&k2).is_none());
        assert!(cache.get(&k3).is_some());
    }

    #[test]
    fn canon_hash_replays_the_fingerprint() {
        let key = CacheKey::of(&["certify", "two", "var x : integer; x := 0"]);
        assert_eq!(canon_hash(&key.canon), Some(key.hash));
        assert_eq!(canon_hash(""), Some(CacheKey::of(&[]).hash));

        // Malformed canonical text never yields a fingerprint.
        assert_eq!(canon_hash("no-prefix"), None);
        assert_eq!(canon_hash("5:abc\x1f"), None); // length lies
        assert_eq!(canon_hash(&key.canon[..key.canon.len() - 1]), None); // truncated
        assert_eq!(canon_hash("3:abc"), None); // separator missing

        // A doctored part changes the fingerprint (forgery detection).
        let doctored = key.canon.replace("certify", "certifz");
        assert_ne!(canon_hash(&doctored), Some(key.hash));
    }

    #[test]
    fn digest_is_order_independent_and_contains_matches_canon() {
        let mut a = ResultCache::new(8);
        let mut b = ResultCache::new(8);
        let keys = [
            CacheKey::of(&["1"]),
            CacheKey::of(&["2"]),
            CacheKey::of(&["3"]),
        ];
        assert_eq!(a.digest(), 0);
        for k in &keys {
            a.put(k, result("x"));
        }
        for k in keys.iter().rev() {
            b.put(k, result("x"));
        }
        assert_eq!(a.digest(), b.digest(), "digest ignores insertion order");
        b.put(&CacheKey::of(&["4"]), result("y"));
        assert_ne!(a.digest(), b.digest(), "digest sees the extra entry");

        assert!(a.contains(&keys[0]));
        let forged = CacheKey {
            hash: keys[0].hash,
            canon: "different".to_string(),
        };
        assert!(!a.contains(&forged), "contains checks the canon text");
        assert!(!a.contains(&CacheKey::of(&["missing"])));
    }

    #[test]
    fn collisions_degrade_to_misses() {
        let mut cache = ResultCache::new(4);
        let real = CacheKey::of(&["x"]);
        cache.put(&real, result("x"));
        let forged = CacheKey {
            hash: real.hash,
            canon: "different".to_string(),
        };
        assert!(cache.get(&forged).is_none());
        assert!(cache.get(&real).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut cache = ResultCache::new(0);
        let k = CacheKey::of(&["k"]);
        cache.put(&k, result("k"));
        assert!(cache.is_empty());
        assert!(cache.get(&k).is_none());
    }
}
