//! Per-connection machinery for the poll-loop front-end: a resumable
//! incremental line decoder and the connection state machine it feeds.
//!
//! The decoder is the nonblocking twin of the blocking bounded reader
//! in [`crate::serve`]: bytes arrive in arbitrary fragments (down to
//! one byte at a time under short-read chaos), and the decoder carries
//! its partial-line state across calls instead of looping until a
//! newline shows up. It enforces the same memory bound — a line longer
//! than `max` bytes is discarded up to and including its newline and
//! reported as [`Decoded::TooLong`], so the stream stays in sync at a
//! bounded cost and a hostile client cannot balloon server memory by
//! never sending a newline.
//!
//! A [`Conn`] owns one client socket's full lifecycle state: the
//! decoder, the outgoing write buffer (with a high-water mark that
//! converts an unboundedly slow reader into a structured `overloaded`
//! disconnect), the in-flight request window that applies backpressure
//! by pausing reads, and the activity clock the idle/stall timeouts
//! run on.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::time::Instant;

use crate::protocol::{ErrorKind, Response};

/// One event produced by the [`LineDecoder`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Decoded {
    /// A complete line (newline stripped; a trailing CR is stripped
    /// too).
    Line(Vec<u8>),
    /// A line exceeded the cap and was discarded through its newline;
    /// the stream is resynchronized.
    TooLong,
}

/// A resumable, bounded, newline-framed decoder. Feed it whatever
/// fragments the socket delivers; pop complete lines as they form.
#[derive(Debug)]
pub struct LineDecoder {
    max: usize,
    line: Vec<u8>,
    discarding: bool,
    ready: VecDeque<Decoded>,
}

impl LineDecoder {
    /// A decoder accepting at most `max` bytes per line.
    pub fn new(max: usize) -> LineDecoder {
        LineDecoder {
            max,
            line: Vec::new(),
            discarding: false,
            ready: VecDeque::new(),
        }
    }

    /// Consumes a fragment of input, queueing any completed events.
    pub fn feed(&mut self, input: &[u8]) {
        let mut rest = input;
        while !rest.is_empty() {
            match rest.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    if self.discarding || self.line.len() + i > self.max {
                        self.line.clear();
                        self.discarding = false;
                        self.ready.push_back(Decoded::TooLong);
                    } else {
                        let mut line = std::mem::take(&mut self.line);
                        line.extend_from_slice(&rest[..i]);
                        if line.last() == Some(&b'\r') {
                            line.pop();
                        }
                        self.ready.push_back(Decoded::Line(line));
                    }
                    rest = &rest[i + 1..];
                }
                None => {
                    if !self.discarding {
                        if self.line.len() + rest.len() > self.max {
                            // Over the cap with no newline yet: stop
                            // buffering, start discarding.
                            self.discarding = true;
                            self.line.clear();
                        } else {
                            self.line.extend_from_slice(rest);
                        }
                    }
                    rest = &[];
                }
            }
        }
    }

    /// Pops the next completed event, if any.
    pub fn next_event(&mut self) -> Option<Decoded> {
        self.ready.pop_front()
    }

    /// Whether a partial line is pending — bytes arrived (or are being
    /// discarded) with no newline yet. This is what the read-stall
    /// timeout watches: a client frozen mid-line is a slowloris, a
    /// client idle between lines is merely quiet.
    pub fn mid_line(&self) -> bool {
        !self.line.is_empty() || self.discarding
    }

    /// Bytes of partial line currently buffered.
    pub fn buffered(&self) -> usize {
        self.line.len()
    }
}

/// A slab slot address plus a generation counter. Replies from pooled
/// jobs carry their token back to the poll loop; the generation guards
/// against slot reuse, so a reply for a dead connection can never be
/// written to whoever inherited its slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConnToken {
    /// Index into the poller's slab.
    pub slot: usize,
    /// Generation the slot held when the request was read.
    pub gen: u64,
}

/// Why the poll loop decided to close a connection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CloseReason {
    /// Clean end-of-stream with nothing left to deliver.
    Eof,
    /// A read or write failed.
    Io,
    /// The client froze mid-line (or sat idle) past the timeout.
    Stalled,
    /// The write buffer crossed the high-water mark: the client is not
    /// reading its replies.
    Overloaded,
}

/// Per-connection state machine driven by the poll loop.
#[derive(Debug)]
pub struct Conn<S> {
    /// The nonblocking socket (or a test double).
    pub stream: S,
    /// Generation tag; see [`ConnToken`].
    pub gen: u64,
    /// Incremental request-line decoder.
    pub decoder: LineDecoder,
    /// Buffered outgoing bytes awaiting socket readiness.
    pub wbuf: VecDeque<u8>,
    /// Requests dispatched but not yet answered through the reply
    /// channel. Reads pause while this reaches the pipeline window.
    pub inflight: usize,
    /// Last moment the client made observable progress (bytes read
    /// from it, or bytes written to it).
    pub last_activity: Instant,
    /// The client half-closed its sending side (EOF seen).
    pub read_closed: bool,
    /// Close once `wbuf` drains (set by the overload disconnect).
    pub closing: bool,
    /// The last flushed byte was not a newline — the peer holds a
    /// truncated line, so anything appended after a backlog discard
    /// must be preceded by a fresh newline.
    mid_line_write: bool,
}

impl<S> Conn<S> {
    /// A fresh connection over `stream` with line cap `max_line_bytes`.
    pub fn new(stream: S, gen: u64, max_line_bytes: usize) -> Conn<S> {
        Conn {
            stream,
            gen,
            decoder: LineDecoder::new(max_line_bytes),
            wbuf: VecDeque::new(),
            inflight: 0,
            last_activity: Instant::now(),
            read_closed: false,
            closing: false,
            mid_line_write: false,
        }
    }

    /// Queues one response line (newline appended) for writing.
    pub fn enqueue_line(&mut self, line: &str) {
        self.wbuf.extend(line.as_bytes());
        self.wbuf.push_back(b'\n');
    }

    /// Converts an over-high-water backlog into a structured
    /// `overloaded` disconnect: the unread backlog is dropped (the
    /// client was not consuming it), a final error line is queued, and
    /// the connection closes once that line flushes. If a previous
    /// flush ended mid-line, a newline is emitted first so the error
    /// line cannot be glued onto a truncated reply.
    pub fn overload_disconnect(&mut self) {
        self.wbuf.clear();
        if self.mid_line_write {
            self.wbuf.push_back(b'\n');
        }
        let line = Response::error(
            None,
            ErrorKind::Overloaded,
            "write buffer high-water mark exceeded; slow reader disconnected",
        )
        .into_line();
        self.enqueue_line(&line);
        self.closing = true;
    }

    /// Whether the connection has fully served its purpose and can be
    /// reaped: the graceful-close flag is set and the goodbye flushed,
    /// or the client hung up and nothing is pending in either
    /// direction.
    pub fn finished(&self) -> bool {
        (self.closing && self.wbuf.is_empty())
            || (self.read_closed && self.inflight == 0 && self.wbuf.is_empty())
    }
}

impl<S: Write> Conn<S> {
    /// Flushes as much of `wbuf` as the socket will take right now.
    /// Returns `Ok(true)` if any bytes moved. `WouldBlock` is not an
    /// error — it just ends the attempt.
    pub fn flush_writes(&mut self) -> io::Result<bool> {
        let mut progressed = false;
        while !self.wbuf.is_empty() {
            let (front, _) = self.wbuf.as_slices();
            match self.stream.write(front) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.mid_line_write = front[n - 1] != b'\n';
                    self.wbuf.drain(..n);
                    self.last_activity = Instant::now();
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(progressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn byte_at_a_time_delivery_reassembles_lines() {
        let mut d = LineDecoder::new(64);
        for &b in b"hello\nworld\r\n" {
            d.feed(&[b]);
        }
        assert_eq!(d.next_event(), Some(Decoded::Line(b"hello".to_vec())));
        assert_eq!(
            d.next_event(),
            Some(Decoded::Line(b"world".to_vec())),
            "CR stripped"
        );
        assert_eq!(d.next_event(), None);
        assert!(!d.mid_line());
    }

    #[test]
    fn partial_lines_survive_across_feeds() {
        let mut d = LineDecoder::new(64);
        d.feed(b"par");
        assert!(d.mid_line());
        assert_eq!(d.buffered(), 3);
        assert_eq!(d.next_event(), None, "no line until the newline lands");
        d.feed(b"tial\n");
        assert_eq!(d.next_event(), Some(Decoded::Line(b"partial".to_vec())));
        assert!(!d.mid_line());
    }

    #[test]
    fn one_fragment_can_carry_many_lines() {
        let mut d = LineDecoder::new(64);
        d.feed(b"a\nb\nc");
        assert_eq!(d.next_event(), Some(Decoded::Line(b"a".to_vec())));
        assert_eq!(d.next_event(), Some(Decoded::Line(b"b".to_vec())));
        assert_eq!(d.next_event(), None);
        assert!(d.mid_line(), "the `c` tail is a partial line");
    }

    #[test]
    fn oversized_lines_are_discarded_and_resync_byte_at_a_time() {
        let mut d = LineDecoder::new(4);
        for &b in b"abcdefgh\nok\n" {
            d.feed(&[b]);
        }
        assert_eq!(d.next_event(), Some(Decoded::TooLong));
        assert_eq!(d.next_event(), Some(Decoded::Line(b"ok".to_vec())));
        assert_eq!(d.buffered(), 0, "no oversized bytes retained");
    }

    #[test]
    fn cap_is_exact_at_the_boundary() {
        // Exactly at the cap: accepted. One byte over: rejected.
        let mut d = LineDecoder::new(4);
        d.feed(b"abcd\nabcde\n");
        assert_eq!(d.next_event(), Some(Decoded::Line(b"abcd".to_vec())));
        assert_eq!(d.next_event(), Some(Decoded::TooLong));
        assert_eq!(d.next_event(), None);
    }

    #[test]
    fn discard_state_is_resumable_across_fragments() {
        let mut d = LineDecoder::new(4);
        d.feed(b"toolong");
        assert!(d.mid_line(), "discarding still counts as mid-line");
        assert_eq!(d.buffered(), 0, "discarded bytes are not buffered");
        d.feed(b"er still\ngood\n");
        assert_eq!(d.next_event(), Some(Decoded::TooLong));
        assert_eq!(d.next_event(), Some(Decoded::Line(b"good".to_vec())));
    }

    /// A write target that accepts only `cap` bytes in total, then
    /// reports `WouldBlock` — a kernel send buffer in miniature.
    struct Throttled {
        taken: Vec<u8>,
        cap: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let room = self.cap.saturating_sub(self.taken.len());
            if room == 0 {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(room);
            self.taken.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn flush_handles_partial_writes_and_wouldblock() {
        let sink = Throttled {
            taken: Vec::new(),
            cap: 7,
        };
        let mut conn = Conn::new(sink, 1, 1024);
        conn.enqueue_line("0123456789");
        assert!(conn.flush_writes().unwrap());
        assert_eq!(conn.stream.taken, b"0123456");
        assert_eq!(conn.wbuf.len(), 4, "tail (incl. newline) stays buffered");
        assert!(!conn.finished());
        // The socket opens up: the rest drains.
        conn.stream.cap = 64;
        assert!(conn.flush_writes().unwrap());
        assert_eq!(conn.stream.taken, b"0123456789\n");
        assert!(conn.wbuf.is_empty());
    }

    #[test]
    fn overload_disconnect_drops_backlog_and_says_why() {
        let sink = Throttled {
            taken: Vec::new(),
            cap: 5, // the peer reads almost nothing
        };
        let mut conn = Conn::new(sink, 1, 1024);
        conn.enqueue_line(r#"{"ok":true,"op":"certify","certified":true}"#);
        conn.enqueue_line(r#"{"ok":true,"op":"certify","certified":true}"#);
        conn.flush_writes().unwrap();
        assert!(conn.wbuf.len() > 32, "backlog built up");

        conn.overload_disconnect();
        assert!(conn.closing);
        // The peer saw a truncated line; the goodbye is newline-led so
        // it still parses line-by-line.
        conn.stream.cap = usize::MAX;
        conn.flush_writes().unwrap();
        assert!(conn.finished());
        let written = String::from_utf8(conn.stream.taken).unwrap();
        let goodbye = written.lines().last().expect("a final line made it out");
        let v = Json::parse(goodbye).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("overloaded"),
        );
    }

    #[test]
    fn finished_covers_both_shutdown_shapes() {
        let mut conn = Conn::new(Vec::<u8>::new(), 1, 64);
        assert!(!conn.finished());
        conn.read_closed = true;
        assert!(conn.finished(), "EOF with nothing pending is done");
        conn.inflight = 1;
        assert!(!conn.finished(), "in-flight work keeps the conn alive");
    }
}
