//! The server front-ends: a stdin/stdout pipe server and a TCP server
//! (readiness-driven poll loop by default — see [`crate::poller`] — or
//! the legacy thread-per-connection mode via [`FrontEnd::Threaded`]).
//!
//! All of them speak the JSON-lines protocol and share one [`Service`]
//! and one [`Pool`]:
//!
//! - `certify`/`infer`/`flows`/`lint`/`explore` are queued to the pool;
//!   when the queue is full the request is refused immediately with an
//!   `overloaded` error instead of growing an unbounded backlog. Each
//!   queued job carries its request's deadline, so the pool's watchdog
//!   can spot workers stuck past it.
//! - `stats` is answered on the connection thread, bypassing the queue,
//!   so the service stays observable under load. The response includes
//!   the supervisor's pool-health counters (`pool.restarts` etc.).
//! - `shutdown` stops intake, drains everything already accepted, and
//!   exits. Pipelined responses may arrive out of order; correlate by
//!   `id`.
//!
//! Robustness properties of this layer:
//!
//! - **Bounded request lines.** A connection may send at most
//!   [`ServerConfig::max_line_bytes`] per line; longer lines are
//!   discarded up to the next newline and answered with a structured
//!   `protocol` error, so a hostile client cannot balloon server memory
//!   by never sending a newline.
//! - **Panic-safe replies.** Every pooled job holds a [`ReplyGuard`];
//!   if the job panics before replying (a worker bug, or injected
//!   chaos), the guard's `Drop` runs during unwind and sends an
//!   `internal` error, so clients never hang on a vanished request.
//! - **Deterministic chaos.** When [`ServerConfig::chaos`] holds a
//!   [`FaultPlan`], the accept loop, the per-connection streams, and
//!   the dispatch path consult it for injected connection drops, IO
//!   errors, short reads/writes, latency, and worker panics. With the
//!   default `chaos: None` every hook is [`NoFaults`], which inlines to
//!   constant `false`s — production pays nothing.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use crate::conn::{Decoded, LineDecoder};
use crate::fault::{ChaosStream, FaultPlan, Faults, NoFaults};
use crate::hints::{HintStore, DEFAULT_HINT_BYTES};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::peer::ClusterConfig;
use crate::persist::{DurableStore, PersistConfig};
use crate::pool::{Pool, PoolHealth, SubmitError};
use crate::protocol::{ErrorKind, Op, Request, Response};
use crate::service::{Limits, Service};

/// Which TCP connection front-end serves the sockets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrontEnd {
    /// The readiness-driven poll loop (the default): every socket is
    /// nonblocking, one loop owns accept/read/write over a slab of
    /// connection state machines, and concurrency is bounded by work,
    /// not threads. Supports pipelining, per-connection backpressure,
    /// stall/idle timeouts, and slow-reader disconnects.
    Poll,
    /// The legacy thread-per-connection front-end with blocking reads.
    /// Kept for differential benchmarking (`BENCH_serve.json`) and as a
    /// fallback; it enforces none of the poll loop's stall or
    /// write-buffer limits.
    Threaded,
}

/// Tunables for a server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads certifying in parallel.
    pub workers: usize,
    /// Jobs the queue holds before `overloaded` responses begin.
    pub queue_capacity: usize,
    /// Result-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Per-request work limits.
    pub limits: Limits,
    /// Longest accepted request line in bytes; longer lines get a
    /// structured `protocol` error and are discarded.
    pub max_line_bytes: usize,
    /// Deterministic fault-injection plan; `None` (the default) runs
    /// the zero-cost [`NoFaults`] hooks.
    pub chaos: Option<Arc<FaultPlan>>,
    /// Durable cache store configuration (`--cache-dir`); `None` (the
    /// default) serves memory-only.
    pub persist: Option<PersistConfig>,
    /// Which TCP front-end to run ([`FrontEnd::Poll`] by default).
    pub front_end: FrontEnd,
    /// Most requests one connection may have in flight before the poll
    /// loop pauses reading it (backpressure, never dropped requests).
    pub pipeline_window: usize,
    /// Bytes of unwritten replies one connection may buffer before it
    /// is disconnected with a structured `overloaded` error.
    pub write_high_water: usize,
    /// Milliseconds a connection may sit with no request in flight and
    /// no partial line before the poll loop closes it (0 disables).
    pub idle_timeout_ms: u64,
    /// Milliseconds a connection may stall mid-line before the poll
    /// loop closes it — the slowloris defense (0 disables).
    pub stall_timeout_ms: u64,
    /// Cluster topology (`--peers`); `None` (the default) serves
    /// standalone. With a topology, requests owned by other nodes are
    /// forwarded there, `peer-sync` pages the cache to peers, and a
    /// configured [`ClusterConfig::sync_from`] peer is drained before
    /// serving (warm start by journal shipping).
    pub cluster: Option<ClusterConfig>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: thread::available_parallelism().map_or(4, usize::from),
            queue_capacity: 256,
            cache_capacity: 4096,
            limits: Limits::default(),
            max_line_bytes: 1 << 20,
            chaos: None,
            persist: None,
            front_end: FrontEnd::Poll,
            pipeline_window: 64,
            write_high_water: 1 << 20,
            idle_timeout_ms: 120_000,
            stall_timeout_ms: 30_000,
            cluster: None,
        }
    }
}

/// Builds the shared service, opening the durable store (and running
/// recovery) first when persistence is configured — so open errors
/// surface as the serve call's `io::Result`, not inside a spawned
/// thread. The chaos hooks are shared with the store for torn-write and
/// short-fsync injection.
fn build_service<F: Faults + Clone>(cfg: &ServerConfig, faults: &F) -> io::Result<Service> {
    let mut service = match &cfg.persist {
        Some(pcfg) => {
            let store = DurableStore::open_with_faults(pcfg.clone(), Arc::new(faults.clone()))?;
            Service::with_persist(cfg.cache_capacity, cfg.limits, store)
        }
        None => Service::new(cfg.cache_capacity, cfg.limits),
    };
    if let Some(cluster) = &cfg.cluster {
        service = service.with_cluster_faults(cluster.clone(), Arc::new(faults.clone()));
        if let Some(pcfg) = &cfg.persist {
            // Hints owed to DOWN replicas survive a crash of *this* node
            // too: they live next to the journal, restored on open.
            service = service.with_hint_store(HintStore::open(&pcfg.dir, DEFAULT_HINT_BYTES));
        }
        if let Some(peer) = &cluster.sync_from {
            // Warm start before serving: drain a loaded peer's cache so
            // this node never re-explores work the cluster already paid
            // for. Sync failure is not fatal — a node whose peer is
            // down serves cold rather than not at all.
            let timeout = Duration::from_millis(cluster.peer_timeout_ms.max(1));
            match crate::peer::sync_from_peer(&service, peer, timeout) {
                Ok(report) => eprintln!(
                    "secflow-server: warm-started from {peer}: {} entries in {} pages ({} rejected)",
                    report.entries_installed, report.pages, report.entries_rejected
                ),
                Err(e) => eprintln!("secflow-server: peer-sync from {peer} failed: {e}"),
            }
        }
    }
    Ok(service)
}

/// How often blocked connection reads wake up to check for shutdown.
const READ_POLL: Duration = Duration::from_millis(100);

/// Where a dispatched request's reply line goes. The thread-per-conn
/// and stdio front-ends sink into a plain channel drained by a writer
/// thread; the poll loop sinks into a channel tagged with the owning
/// connection's token. Either way the sink is infallible from the job's
/// point of view — a vanished reader just drops the line.
pub(crate) trait ReplySink: Clone + Send + 'static {
    /// Delivers one complete response line (no trailing newline).
    fn send_line(&self, line: String);
}

impl ReplySink for mpsc::Sender<String> {
    fn send_line(&self, line: String) {
        let _ = self.send(line);
    }
}

/// Guarantees a pooled job sends exactly one response. Jobs reply
/// through [`ReplyGuard::send`]; if the job panics first, `Drop` runs
/// during unwind and sends a structured `internal` error instead.
struct ReplyGuard<R: ReplySink> {
    reply: R,
    service: Arc<Service>,
    id: Option<Json>,
    sent: bool,
}

impl<R: ReplySink> ReplyGuard<R> {
    fn send(&mut self, line: String) {
        self.sent = true;
        self.reply.send_line(line);
    }
}

impl<R: ReplySink> Drop for ReplyGuard<R> {
    fn drop(&mut self) {
        if !self.sent {
            Metrics::bump(&self.service.metrics.panics);
            Metrics::bump(&self.service.metrics.errors);
            self.reply.send_line(
                Response::error(
                    self.id.as_ref(),
                    ErrorKind::Internal,
                    "worker panicked during request",
                )
                .into_line(),
            );
        }
    }
}

/// Splices the supervisor's pool health into a `stats` response line as
/// a nested `"pool"` object.
fn with_pool_health(line: String, h: PoolHealth) -> String {
    let Ok(Json::Obj(mut fields)) = Json::parse(&line) else {
        return line;
    };
    fields.push((
        "pool".to_string(),
        Json::Obj(vec![
            ("workers".to_string(), Json::Num(h.workers as f64)),
            ("busy".to_string(), Json::Num(h.busy as f64)),
            ("restarts".to_string(), Json::Num(h.restarts as f64)),
            ("panics".to_string(), Json::Num(h.panics as f64)),
            ("recycles".to_string(), Json::Num(h.recycles as f64)),
            (
                "max_consecutive_failures".to_string(),
                Json::Num(h.max_consecutive_failures as f64),
            ),
        ]),
    ));
    Json::Obj(fields).to_string()
}

/// How `dispatch` handled one request line.
pub(crate) enum Dispatched {
    /// The line was a `shutdown` request; the caller stops intake,
    /// acknowledges, and drains. Nothing was sent to the sink.
    Shutdown,
    /// The reply was produced on the calling thread (stats, protocol
    /// errors, overload refusals) and already sent to the sink.
    Inline,
    /// The request was queued to the pool; exactly one reply line will
    /// reach the sink later (the [`ReplyGuard`] guarantees it even
    /// through a worker panic).
    Queued,
}

/// Dispatches one request line. Every outcome except
/// [`Dispatched::Shutdown`] produces exactly one line in `reply` —
/// immediately for inline answers, eventually for queued jobs — which
/// is what lets the poll loop balance its in-flight accounting.
pub(crate) fn dispatch<R: ReplySink, F: Faults>(
    line: &str,
    service: &Arc<Service>,
    pool: &Pool,
    reply: &R,
    faults: &F,
) -> Dispatched {
    service.note_request();
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err((id, message)) => {
            Metrics::bump(&service.metrics.errors);
            reply
                .send_line(Response::error(id.as_ref(), ErrorKind::Protocol, &message).into_line());
            return Dispatched::Inline;
        }
    };
    match req.op {
        Op::Shutdown => Dispatched::Shutdown,
        // Stats answer inline so the service is observable while the
        // queue is saturated; pool health rides along.
        Op::Stats => {
            reply.send_line(with_pool_health(service.execute(&req), pool.health()));
            Dispatched::Inline
        }
        // Ping answers inline too: it is the failure detector's probe,
        // and a probe refused as `overloaded` would make a merely busy
        // node look dead to every peer at once.
        Op::Ping => {
            reply.send_line(service.execute(&req));
            Dispatched::Inline
        }
        _ => {
            let id = req.id.clone();
            let token = service.cancel_token(&req);
            let deadline = token.deadline();
            // Chaos decisions are drawn here (deterministically, from
            // the plan's tick counter) and moved into the job.
            let inject_latency = faults.latency();
            let inject_panic = faults.worker_panic();
            let service_job = Arc::clone(service);
            let reply_job = reply.clone();
            let job_id = req.id.clone();
            match pool.try_submit_with(
                move || {
                    let mut guard = ReplyGuard {
                        reply: reply_job,
                        service: Arc::clone(&service_job),
                        id: job_id,
                        sent: false,
                    };
                    if let Some(pause) = inject_latency {
                        thread::sleep(pause);
                    }
                    if inject_panic {
                        panic!("chaos: injected worker panic");
                    }
                    let line = service_job.execute_with_cancel(&req, &token);
                    guard.send(line);
                },
                deadline,
            ) {
                Ok(()) => Dispatched::Queued,
                Err(SubmitError::Full) => {
                    Metrics::bump(&service.metrics.overloaded);
                    reply.send_line(
                        Response::error(
                            id.as_ref(),
                            ErrorKind::Overloaded,
                            "queue full; retry later",
                        )
                        .into_line(),
                    );
                    Dispatched::Inline
                }
                Err(SubmitError::Closed) => {
                    reply.send_line(
                        Response::error(id.as_ref(), ErrorKind::Internal, "shutting down")
                            .into_line(),
                    );
                    Dispatched::Inline
                }
            }
        }
    }
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line (without its newline) is in the buffer.
    Line,
    /// The stream ended; any partial line is not a request.
    Eof,
    /// The line exceeded the cap; it was discarded through its newline.
    TooLong,
    /// The shutdown flag was raised while waiting for bytes.
    Shutdown,
}

/// Reads one newline-terminated line into `line` (cleared first),
/// refusing to buffer more than `max` bytes: an over-long line is
/// discarded up to and including its newline and reported as
/// [`LineRead::TooLong`], so the connection stays in sync at a bounded
/// memory cost. `WouldBlock`/`TimedOut` reads poll `shutdown`.
///
/// This is the blocking driver over the resumable [`LineDecoder`] — the
/// poll loop drives the same decoder directly from nonblocking reads,
/// so both front-ends share one set of cap/resync semantics.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    line: &mut Vec<u8>,
    max: usize,
    shutdown: &AtomicBool,
) -> io::Result<LineRead> {
    line.clear();
    let mut decoder = LineDecoder::new(max);
    loop {
        if shutdown.load(Ordering::Acquire) {
            return Ok(LineRead::Shutdown);
        }
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            return Ok(LineRead::Eof);
        }
        // Feed at most one line's worth so bytes after the newline stay
        // in the BufRead for the next call.
        let upto = buf
            .iter()
            .position(|&b| b == b'\n')
            .map_or(buf.len(), |i| i + 1);
        decoder.feed(&buf[..upto]);
        reader.consume(upto);
        match decoder.next_event() {
            Some(Decoded::Line(bytes)) => {
                *line = bytes;
                return Ok(LineRead::Line);
            }
            Some(Decoded::TooLong) => return Ok(LineRead::TooLong),
            None => {}
        }
    }
}

pub(crate) fn oversized_line_error(max: usize) -> String {
    Response::error(
        None,
        ErrorKind::Protocol,
        &format!("request line exceeds {max} bytes"),
    )
    .into_line()
}

/// Serves the protocol over stdin/stdout until EOF or a `shutdown`
/// request; queued work is drained before returning.
pub fn serve_stdio(cfg: ServerConfig) -> io::Result<()> {
    match cfg.chaos.clone() {
        Some(plan) => serve_stdio_with(cfg, plan),
        None => serve_stdio_with(cfg, NoFaults),
    }
}

fn serve_stdio_with<F: Faults + Clone>(cfg: ServerConfig, faults: F) -> io::Result<()> {
    let service = Arc::new(build_service(&cfg, &faults)?);
    let pool = Pool::new(cfg.workers, cfg.queue_capacity);
    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let writer = thread::spawn(move || {
        let stdout = io::stdout();
        let mut out = stdout.lock();
        for line in reply_rx {
            if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                break;
            }
        }
    });

    let never = AtomicBool::new(false);
    let stdin = io::stdin();
    let mut reader = stdin.lock();
    let mut line = Vec::new();
    let mut got_shutdown = false;
    let mut shutdown_id = None;
    loop {
        match read_bounded_line(&mut reader, &mut line, cfg.max_line_bytes, &never)? {
            LineRead::Eof | LineRead::Shutdown => break,
            LineRead::TooLong => {
                Metrics::bump(&service.metrics.errors);
                let _ = reply_tx.send(oversized_line_error(cfg.max_line_bytes));
            }
            LineRead::Line => {
                let text = String::from_utf8_lossy(&line);
                let trimmed = text.trim();
                if trimmed.is_empty() {
                    continue;
                }
                if let Dispatched::Shutdown = dispatch(trimmed, &service, &pool, &reply_tx, &faults)
                {
                    got_shutdown = true;
                    shutdown_id = Request::parse(trimmed).ok().and_then(|r| r.id);
                    break;
                }
            }
        }
    }

    // Drain all accepted work, then acknowledge the shutdown.
    pool.shutdown();
    if got_shutdown {
        let _ = reply_tx.send(
            Response::ok(shutdown_id.as_ref(), Op::Shutdown)
                .field("drained", Json::Bool(true))
                .into_line(),
        );
    }
    drop(reply_tx);
    let _ = writer.join();
    Ok(())
}

/// A running TCP server.
pub struct TcpServer {
    addr: SocketAddr,
    handle: thread::JoinHandle<()>,
}

impl TcpServer {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server shuts down (via a `shutdown` request)
    /// and all accepted work has drained.
    pub fn join(self) -> thread::Result<()> {
        self.handle.join()
    }
}

/// Binds an OS-assigned ephemeral loopback port and returns the
/// listener. The shared race-free port helper for every test (and
/// harness) that boots servers: the kernel hands out a free port and
/// the listener *holds* it, so two tests running under
/// `--test-threads 4` — or the three nodes of a cluster — can never
/// collide the way "pick a number, bind later" schemes do. Pass the
/// listener to [`serve_listener`] (or read its `local_addr()` first to
/// build a topology, then serve).
pub fn bind_ephemeral() -> io::Result<TcpListener> {
    TcpListener::bind("127.0.0.1:0")
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serves
/// connections until a `shutdown` request arrives.
pub fn serve_tcp(addr: &str, cfg: ServerConfig) -> io::Result<TcpServer> {
    serve_listener(TcpListener::bind(addr)?, cfg)
}

/// Serves connections on an already-bound listener until a `shutdown`
/// request arrives. This is what lets a cluster harness bind every
/// node's port first (see [`bind_ephemeral`]), build the member list
/// from the known addresses, and only then start the servers.
pub fn serve_listener(listener: TcpListener, cfg: ServerConfig) -> io::Result<TcpServer> {
    match cfg.chaos.clone() {
        Some(plan) => serve_listener_with(listener, cfg, plan),
        None => serve_listener_with(listener, cfg, NoFaults),
    }
}

/// How often the failure-detector beat runs on a clustered node.
const HEALTH_TICK: Duration = Duration::from_millis(250);

/// Spawns the detached failure-detector thread: every tick it probes
/// peers whose probe timer is due and drains any hinted-handoff backlog
/// owed to peers that came back UP. The thread holds only a [`Weak`] on
/// the service, so it exits on its own once the front-end drops the
/// last strong reference at shutdown — no flag to thread through.
fn spawn_health_loop(service: &Arc<Service>) {
    let weak = Arc::downgrade(service);
    let _ = thread::Builder::new()
        .name("secflow-health".to_string())
        .spawn(move || loop {
            thread::sleep(HEALTH_TICK);
            match weak.upgrade() {
                Some(service) => service.health_tick(),
                None => break,
            }
        });
}

fn serve_listener_with<F: Faults + Clone>(
    listener: TcpListener,
    cfg: ServerConfig,
    faults: F,
) -> io::Result<TcpServer> {
    let local = listener.local_addr()?;
    // Open the store (recovery included) before spawning, so a bad
    // cache dir fails the bind call instead of a detached thread.
    let service = Arc::new(build_service(&cfg, &faults)?);
    if cfg.cluster.is_some() {
        spawn_health_loop(&service);
    }
    if cfg.front_end == FrontEnd::Poll {
        let handle = thread::Builder::new()
            .name("secflow-poll".to_string())
            .spawn(move || crate::poller::run(listener, cfg, service, faults))
            .expect("spawn poll thread");
        return Ok(TcpServer {
            addr: local,
            handle,
        });
    }
    let shutdown = Arc::new(AtomicBool::new(false));
    let handle = thread::Builder::new()
        .name("secflow-accept".to_string())
        .spawn(move || {
            let pool = Pool::new(cfg.workers, cfg.queue_capacity);
            thread::scope(|scope| {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Injected connection drop: close it before a single
                    // byte is exchanged; clients should retry.
                    if faults.drop_connection() {
                        continue;
                    }
                    let service = &service;
                    let pool = &pool;
                    let shutdown = &shutdown;
                    let faults = &faults;
                    let max_line_bytes = cfg.max_line_bytes;
                    scope.spawn(move || {
                        let _ = handle_conn(
                            stream,
                            service,
                            pool,
                            shutdown,
                            local,
                            faults,
                            max_line_bytes,
                        );
                    });
                }
                // Scope exit waits for every connection thread, whose
                // replies in turn wait for their in-flight jobs.
            });
            pool.shutdown();
        })
        .expect("spawn accept thread");
    Ok(TcpServer {
        addr: local,
        handle,
    })
}

fn handle_conn<F: Faults + Clone>(
    stream: TcpStream,
    service: &Arc<Service>,
    pool: &Pool,
    shutdown: &AtomicBool,
    self_addr: SocketAddr,
    faults: &F,
    max_line_bytes: usize,
) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_nodelay(true).ok();
    let write_half = stream.try_clone()?;
    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let writer_faults = faults.clone();
    let writer = thread::spawn(move || {
        let mut out = io::BufWriter::new(ChaosStream::new(write_half, &writer_faults));
        for line in reply_rx {
            if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                break;
            }
        }
    });

    let reader_faults = faults.clone();
    let mut reader = BufReader::new(ChaosStream::new(stream, &reader_faults));
    let mut line = Vec::new();
    loop {
        match read_bounded_line(&mut reader, &mut line, max_line_bytes, shutdown) {
            Ok(LineRead::Eof) | Ok(LineRead::Shutdown) => break,
            Ok(LineRead::TooLong) => {
                Metrics::bump(&service.metrics.errors);
                let _ = reply_tx.send(oversized_line_error(max_line_bytes));
            }
            Ok(LineRead::Line) => {
                let text = String::from_utf8_lossy(&line);
                let trimmed = text.trim();
                if !trimmed.is_empty()
                    && matches!(
                        dispatch(trimmed, service, pool, &reply_tx, faults),
                        Dispatched::Shutdown
                    )
                {
                    // Shutdown: stop the accept loop, acknowledge, and
                    // poke the (blocking) listener awake.
                    let id = Request::parse(trimmed).ok().and_then(|r| r.id);
                    shutdown.store(true, Ordering::Release);
                    let _ = reply_tx.send(
                        Response::ok(id.as_ref(), Op::Shutdown)
                            .field("draining", Json::Bool(true))
                            .into_line(),
                    );
                    let _ = TcpStream::connect(self_addr);
                    break;
                }
            }
            Err(_) => break,
        }
    }

    // Dropping our sender leaves only in-flight jobs' clones; the
    // writer exits once those responses have been written.
    drop(reply_tx);
    let _ = writer.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn never() -> AtomicBool {
        AtomicBool::new(false)
    }

    #[test]
    fn bounded_reader_accepts_lines_within_the_cap() {
        let data = b"hello\nworld\r\n";
        let mut reader = io::Cursor::new(&data[..]);
        let mut line = Vec::new();
        let stop = never();
        assert!(matches!(
            read_bounded_line(&mut reader, &mut line, 16, &stop).unwrap(),
            LineRead::Line
        ));
        assert_eq!(line, b"hello");
        assert!(matches!(
            read_bounded_line(&mut reader, &mut line, 16, &stop).unwrap(),
            LineRead::Line
        ));
        assert_eq!(line, b"world", "CR is stripped");
        assert!(matches!(
            read_bounded_line(&mut reader, &mut line, 16, &stop).unwrap(),
            LineRead::Eof
        ));
    }

    #[test]
    fn bounded_reader_discards_oversized_lines_and_resyncs() {
        let mut data = vec![b'x'; 100];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        // A tiny BufReader capacity forces the multi-chunk discard path.
        let mut reader = io::BufReader::with_capacity(8, io::Cursor::new(data));
        let mut line = Vec::new();
        let stop = never();
        assert!(matches!(
            read_bounded_line(&mut reader, &mut line, 32, &stop).unwrap(),
            LineRead::TooLong
        ));
        assert!(line.is_empty(), "no oversized bytes are retained");
        assert!(matches!(
            read_bounded_line(&mut reader, &mut line, 32, &stop).unwrap(),
            LineRead::Line
        ));
        assert_eq!(line, b"ok", "stream resynchronizes at the newline");
    }

    #[test]
    fn bounded_reader_rejects_exactly_over_and_accepts_exactly_at_cap() {
        let data = b"abcd\nabcde\n";
        let mut reader = io::Cursor::new(&data[..]);
        let mut line = Vec::new();
        let stop = never();
        assert!(matches!(
            read_bounded_line(&mut reader, &mut line, 4, &stop).unwrap(),
            LineRead::Line
        ));
        assert_eq!(line, b"abcd");
        assert!(matches!(
            read_bounded_line(&mut reader, &mut line, 4, &stop).unwrap(),
            LineRead::TooLong
        ));
    }

    #[test]
    fn stats_line_carries_pool_health() {
        let line = r#"{"ok":true,"op":"stats","requests":3}"#.to_string();
        let health = PoolHealth {
            workers: 4,
            busy: 1,
            restarts: 2,
            panics: 2,
            recycles: 1,
            max_consecutive_failures: 1,
        };
        let spliced = with_pool_health(line, health);
        let v = Json::parse(&spliced).unwrap();
        assert_eq!(
            v.get("pool").and_then(|p| p.get("restarts")),
            Some(&Json::Num(2.0))
        );
        assert_eq!(
            v.get("pool").and_then(|p| p.get("workers")),
            Some(&Json::Num(4.0))
        );
        assert_eq!(v.get("requests"), Some(&Json::Num(3.0)));
    }
}
