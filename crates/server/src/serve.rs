//! The two front-ends: a stdin/stdout pipe server and a TCP server.
//!
//! Both speak the JSON-lines protocol and share one [`Service`] and one
//! [`Pool`]:
//!
//! - `certify`/`infer`/`flows` are queued to the pool; when the queue
//!   is full the request is refused immediately with an `overloaded`
//!   error instead of growing an unbounded backlog.
//! - `stats` is answered on the connection thread, bypassing the queue,
//!   so the service stays observable under load.
//! - `shutdown` stops intake, drains everything already accepted, and
//!   exits. Pipelined responses may arrive out of order; correlate by
//!   `id`.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use crate::metrics::Metrics;
use crate::pool::{Pool, SubmitError};
use crate::protocol::{ErrorKind, Op, Request, Response};
use crate::service::{Limits, Service};

/// Tunables for a server instance.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads certifying in parallel.
    pub workers: usize,
    /// Jobs the queue holds before `overloaded` responses begin.
    pub queue_capacity: usize,
    /// Result-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Per-request work limits.
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: thread::available_parallelism().map_or(4, usize::from),
            queue_capacity: 256,
            cache_capacity: 4096,
            limits: Limits::default(),
        }
    }
}

/// How often blocked connection reads wake up to check for shutdown.
const READ_POLL: Duration = Duration::from_millis(100);

/// Dispatches one parsed line. Returns `true` if it was a shutdown
/// request (the caller stops reading).
fn dispatch(line: &str, service: &Arc<Service>, pool: &Pool, reply: &mpsc::Sender<String>) -> bool {
    service.note_request();
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err((id, message)) => {
            Metrics::bump(&service.metrics.errors);
            let _ =
                reply.send(Response::error(id.as_ref(), ErrorKind::Protocol, &message).into_line());
            return false;
        }
    };
    match req.op {
        Op::Shutdown => true,
        // Stats answer inline so the service is observable while the
        // queue is saturated.
        Op::Stats => {
            let _ = reply.send(service.execute(&req));
            false
        }
        _ => {
            let service_job = Arc::clone(service);
            let reply_job = reply.clone();
            let id = req.id.clone();
            match pool.try_submit(move || {
                let _ = reply_job.send(service_job.execute(&req));
            }) {
                Ok(()) => {}
                Err(SubmitError::Full) => {
                    Metrics::bump(&service.metrics.overloaded);
                    let _ = reply.send(
                        Response::error(
                            id.as_ref(),
                            ErrorKind::Overloaded,
                            "queue full; retry later",
                        )
                        .into_line(),
                    );
                }
                Err(SubmitError::Closed) => {
                    let _ = reply.send(
                        Response::error(id.as_ref(), ErrorKind::Internal, "shutting down")
                            .into_line(),
                    );
                }
            }
            false
        }
    }
}

/// Serves the protocol over stdin/stdout until EOF or a `shutdown`
/// request; queued work is drained before returning.
pub fn serve_stdio(cfg: ServerConfig) -> io::Result<()> {
    let service = Arc::new(Service::new(cfg.cache_capacity, cfg.limits));
    let pool = Pool::new(cfg.workers, cfg.queue_capacity);
    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let writer = thread::spawn(move || {
        let stdout = io::stdout();
        let mut out = stdout.lock();
        for line in reply_rx {
            if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                break;
            }
        }
    });

    let stdin = io::stdin();
    let mut got_shutdown = false;
    let mut shutdown_id = None;
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if dispatch(&line, &service, &pool, &reply_tx) {
            got_shutdown = true;
            shutdown_id = Request::parse(&line).ok().and_then(|r| r.id);
            break;
        }
    }

    // Drain all accepted work, then acknowledge the shutdown.
    pool.shutdown();
    if got_shutdown {
        let _ = reply_tx.send(
            Response::ok(shutdown_id.as_ref(), Op::Shutdown)
                .field("drained", crate::json::Json::Bool(true))
                .into_line(),
        );
    }
    drop(reply_tx);
    let _ = writer.join();
    Ok(())
}

/// A running TCP server.
pub struct TcpServer {
    addr: SocketAddr,
    handle: thread::JoinHandle<()>,
}

impl TcpServer {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server shuts down (via a `shutdown` request)
    /// and all accepted work has drained.
    pub fn join(self) -> thread::Result<()> {
        self.handle.join()
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serves
/// connections until a `shutdown` request arrives.
pub fn serve_tcp(addr: &str, cfg: ServerConfig) -> io::Result<TcpServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let handle = thread::Builder::new()
        .name("secflow-accept".to_string())
        .spawn(move || {
            let service = Arc::new(Service::new(cfg.cache_capacity, cfg.limits));
            let pool = Pool::new(cfg.workers, cfg.queue_capacity);
            thread::scope(|scope| {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let service = &service;
                    let pool = &pool;
                    let shutdown = &shutdown;
                    scope.spawn(move || {
                        let _ = handle_conn(stream, service, pool, shutdown, local);
                    });
                }
                // Scope exit waits for every connection thread, whose
                // replies in turn wait for their in-flight jobs.
            });
            pool.shutdown();
        })
        .expect("spawn accept thread");
    Ok(TcpServer {
        addr: local,
        handle,
    })
}

fn handle_conn(
    stream: TcpStream,
    service: &Arc<Service>,
    pool: &Pool,
    shutdown: &AtomicBool,
    self_addr: SocketAddr,
) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_nodelay(true).ok();
    let write_half = stream.try_clone()?;
    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let writer = thread::spawn(move || {
        let mut out = io::BufWriter::new(write_half);
        for line in reply_rx {
            if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                break;
            }
        }
    });

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break, // client closed
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() && dispatch(trimmed, service, pool, &reply_tx) {
                    // Shutdown: stop the accept loop, acknowledge, and
                    // poke the (blocking) listener awake.
                    let id = Request::parse(trimmed).ok().and_then(|r| r.id);
                    shutdown.store(true, Ordering::Release);
                    let _ = reply_tx.send(
                        Response::ok(id.as_ref(), Op::Shutdown)
                            .field("draining", crate::json::Json::Bool(true))
                            .into_line(),
                    );
                    let _ = TcpStream::connect(self_addr);
                    break;
                }
                line.clear();
            }
            // Timeout: `line` may hold a partial read; keep appending.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }

    // Dropping our sender leaves only in-flight jobs' clones; the
    // writer exits once those responses have been written.
    drop(reply_tx);
    let _ = writer.join();
    Ok(())
}
