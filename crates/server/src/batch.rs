//! Bulk certification: every `*.sf` file in a directory, through the
//! same worker pool and cache as the online server.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{mpsc, Arc};
use std::time::Instant;

use crate::client::{RemoteClient, RetryPolicy};
use crate::json::Json;
use crate::pool::Pool;
use crate::protocol::{Op, Request};
use crate::serve::ServerConfig;
use crate::service::Service;

/// Outcome of one file in a batch run.
#[derive(Clone, Debug)]
pub struct FileOutcome {
    /// Path of the certified file.
    pub path: PathBuf,
    /// `certified` / `REJECTED` / an error category.
    pub status: String,
    /// Statements certified (0 when the program never parsed).
    pub statements: u64,
    /// Whether the result came from the cache.
    pub cached: bool,
    /// Service-side latency in microseconds.
    pub us: u64,
    /// Lint counts `(errors, warnings, infos)`; `None` when the lint op
    /// failed (e.g. the file never parsed).
    pub lint: Option<(u64, u64, u64)>,
}

/// Totals for the whole batch.
#[derive(Clone, Debug, Default)]
pub struct BatchSummary {
    /// Per-file outcomes, in directory order.
    pub files: Vec<FileOutcome>,
    /// Files that certified.
    pub certified: usize,
    /// Files the mechanism rejected.
    pub rejected: usize,
    /// Files that failed (parse/binding/fuel errors, unreadable files).
    pub errored: usize,
    /// Results served from the cache.
    pub cache_hits: usize,
    /// Wall-clock time for the whole batch, in microseconds.
    pub wall_us: u64,
}

/// Certifies every `*.sf` file under `dir` (sorted, non-recursive)
/// through a worker pool. `classes`/`default_class`/`lattice` apply to
/// every file; class names not declared by a given file are skipped for
/// that file.
pub fn run_batch(
    dir: &Path,
    classes: &[(String, String)],
    default_class: Option<&str>,
    lattice: &str,
    cfg: ServerConfig,
) -> Result<BatchSummary, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read `{}`: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "sf"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no *.sf files in `{}`", dir.display()));
    }

    let service = Arc::new(Service::new(cfg.cache_capacity, cfg.limits));
    let pool = Pool::new(cfg.workers, cfg.queue_capacity);
    let (tx, rx) = mpsc::channel::<FileOutcome>();
    let start = Instant::now();

    for path in &paths {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                let _ = tx.send(FileOutcome {
                    path: path.clone(),
                    status: format!("unreadable ({e})"),
                    statements: 0,
                    cached: false,
                    us: 0,
                    lint: None,
                });
                continue;
            }
        };
        // Drop class pins the file does not declare, so one policy can
        // span heterogeneous programs. (Parse errors surface in the
        // job; here they just leave the pin list untouched.)
        let declared: Vec<(String, String)> = match secflow_lang::parse(&source) {
            Ok(program) => classes
                .iter()
                .filter(|(name, _)| program.symbols.lookup(name).is_some())
                .cloned()
                .collect(),
            Err(_) => classes.to_vec(),
        };
        let req = certify_request(source, declared, default_class, lattice);
        let service = Arc::clone(&service);
        let tx = tx.clone();
        let path = path.clone();
        // Blocking submit: in batch mode the producer waits for queue
        // space instead of shedding load.
        service.note_request();
        pool.submit(move || {
            let line = service.execute(&req);
            // Run the analysis passes as a second service op: same
            // cache, same metrics, one lint column per file.
            let lint_req = lint_request(req.source.clone());
            service.note_request();
            let lint_line = service.execute(&lint_req);
            let _ = tx.send(file_outcome(path, &line, Some(&lint_line)));
        })
        .map_err(|_| "worker pool closed unexpectedly".to_string())?;
    }
    drop(tx);

    let mut summary = BatchSummary::default();
    for outcome in rx {
        match outcome.status.as_str() {
            "certified" => summary.certified += 1,
            "REJECTED" => summary.rejected += 1,
            _ => summary.errored += 1,
        }
        if outcome.cached {
            summary.cache_hits += 1;
        }
        summary.files.push(outcome);
    }
    pool.shutdown();
    summary.files.sort_by(|a, b| a.path.cmp(&b.path));
    summary.wall_us = start.elapsed().as_micros() as u64;
    // Cross-check against service metrics (cache hits recorded there).
    summary.cache_hits = service.metrics.cache_hits.load(Relaxed) as usize;
    Ok(summary)
}

/// Certifies every `*.sf` file under `dir` against a remote server at
/// `addr`, via the retrying client. Transient failures (connection
/// drops, queue-full shedding, timeouts) are retried per `policy`;
/// files that still fail after the budget surface as errored outcomes.
pub fn run_batch_remote(
    dir: &Path,
    classes: &[(String, String)],
    default_class: Option<&str>,
    lattice: &str,
    addr: &str,
    policy: RetryPolicy,
) -> Result<BatchSummary, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read `{}`: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "sf"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no *.sf files in `{}`", dir.display()));
    }

    let mut client = RemoteClient::new(addr, policy);
    let start = Instant::now();
    let mut summary = BatchSummary::default();
    for path in paths {
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                summary.files.push(FileOutcome {
                    path,
                    status: format!("unreadable ({e})"),
                    statements: 0,
                    cached: false,
                    us: 0,
                    lint: None,
                });
                continue;
            }
        };
        let declared: Vec<(String, String)> = match secflow_lang::parse(&source) {
            Ok(program) => classes
                .iter()
                .filter(|(name, _)| program.symbols.lookup(name).is_some())
                .cloned()
                .collect(),
            Err(_) => classes.to_vec(),
        };
        let req = certify_request(source, declared, default_class, lattice);
        let line = match client.call(&req) {
            Ok(line) => line,
            Err(e) => {
                summary.files.push(FileOutcome {
                    path,
                    status: format!("unreachable ({e})"),
                    statements: 0,
                    cached: false,
                    us: 0,
                    lint: None,
                });
                continue;
            }
        };
        let lint_line = client.call(&lint_request(req.source.clone())).ok();
        summary
            .files
            .push(file_outcome(path, &line, lint_line.as_deref()));
    }

    for outcome in &summary.files {
        match outcome.status.as_str() {
            "certified" => summary.certified += 1,
            "REJECTED" => summary.rejected += 1,
            _ => summary.errored += 1,
        }
        if outcome.cached {
            summary.cache_hits += 1;
        }
    }
    summary.files.sort_by(|a, b| a.path.cmp(&b.path));
    summary.wall_us = start.elapsed().as_micros() as u64;
    Ok(summary)
}

fn certify_request(
    source: String,
    classes: Vec<(String, String)>,
    default_class: Option<&str>,
    lattice: &str,
) -> Request {
    let mut req = Request::new(Op::Certify, source);
    req.classes = classes;
    req.default_class = default_class.map(str::to_string);
    req.lattice = lattice.to_string();
    req
}

fn lint_request(source: String) -> Request {
    Request::new(Op::Lint, source)
}

/// Parses the certify (and optional lint) response lines into one
/// [`FileOutcome`] — shared by the local and remote batch paths.
fn file_outcome(path: PathBuf, certify_line: &str, lint_line: Option<&str>) -> FileOutcome {
    let v = Json::parse(certify_line).unwrap_or(Json::Null);
    let status = if v.get("ok").and_then(Json::as_bool) == Some(false) {
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .unwrap_or("error")
            .to_string()
    } else if v.get("certified").and_then(Json::as_bool) == Some(true) {
        "certified".to_string()
    } else {
        "REJECTED".to_string()
    };
    let lint = lint_line.and_then(|line| {
        let lv = Json::parse(line).unwrap_or(Json::Null);
        if lv.get("ok").and_then(Json::as_bool) == Some(true) {
            Some((
                lv.get("errors").and_then(Json::as_u64).unwrap_or(0),
                lv.get("warnings").and_then(Json::as_u64).unwrap_or(0),
                lv.get("infos").and_then(Json::as_u64).unwrap_or(0),
            ))
        } else {
            None
        }
    });
    FileOutcome {
        path,
        status,
        statements: v.get("statements").and_then(Json::as_u64).unwrap_or(0),
        cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
        us: v.get("us").and_then(Json::as_u64).unwrap_or(0),
        lint,
    }
}

/// Renders the summary as an aligned text table.
pub fn render_summary(summary: &BatchSummary) -> String {
    let mut out = String::new();
    let width = summary
        .files
        .iter()
        .map(|f| f.path.display().to_string().len())
        .max()
        .unwrap_or(4)
        .max(4);
    out.push_str(&format!(
        "{:<width$}  {:>10}  {:>6}  {:>9}  {:>5}  {:>10}\n",
        "file", "status", "stmts", "time", "cache", "lint"
    ));
    for f in &summary.files {
        let lint = match f.lint {
            None => "-".to_string(),
            Some((0, 0, 0)) => "clean".to_string(),
            Some((e, w, i)) => {
                let mut parts = Vec::new();
                if e > 0 {
                    parts.push(format!("{e}E"));
                }
                if w > 0 {
                    parts.push(format!("{w}W"));
                }
                if i > 0 {
                    parts.push(format!("{i}I"));
                }
                parts.join(" ")
            }
        };
        out.push_str(&format!(
            "{:<width$}  {:>10}  {:>6}  {:>7}µs  {:>5}  {:>10}\n",
            f.path.display(),
            f.status,
            f.statements,
            f.us,
            if f.cached { "hit" } else { "-" },
            lint,
        ));
    }
    out.push_str(&format!(
        "\n{} file(s): {} certified, {} rejected, {} error(s); {} cache hit(s); {:.1} ms total\n",
        summary.files.len(),
        summary.certified,
        summary.rejected,
        summary.errored,
        summary.cache_hits,
        summary.wall_us as f64 / 1e3,
    ));
    out
}
