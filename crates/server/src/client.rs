//! A retrying TCP client for the JSON-lines protocol.
//!
//! Used by `secflow batch --remote` and the integration tests. Each
//! request attempt opens a fresh connection (robust against a server
//! that kills connections mid-response), and failures are classified
//! against the protocol's retryable/permanent taxonomy:
//!
//! - **retryable**: connect refusals/resets, IO errors, truncated
//!   responses, and server errors whose `kind` is retryable
//!   (`overloaded`, `timeout`, `internal`);
//! - **permanent**: server errors with a permanent `kind` (`protocol`,
//!   `parse`, `binding`, `fuel`) — retrying cannot change the answer.
//!
//! Retry pacing is exponential backoff with *decorrelated jitter*
//! (each sleep is drawn between the base delay and 3× the previous
//! sleep, capped), which spreads synchronized retry storms apart. The
//! jitter RNG is deterministic per client (seeded), so tests reproduce.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::fault::splitmix64;
use crate::json::Json;
use crate::protocol::{ErrorKind, Request};

/// How many times to try, and how to pace the attempts.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 = no retries.
    pub budget: u32,
    /// Base (and minimum) backoff sleep.
    pub base: Duration,
    /// Backoff ceiling per sleep.
    pub cap: Duration,
    /// Per-attempt IO timeout (connect/read/write); `None` = blocking.
    pub io_timeout: Option<Duration>,
    /// Jitter RNG seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            budget: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            io_timeout: Some(Duration::from_secs(10)),
            seed: 1,
        }
    }
}

/// Decorrelated-jitter backoff schedule: each sleep is uniform in
/// `[base, prev * 3]`, clamped to `[base, cap]`.
#[derive(Clone, Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    prev: Duration,
    state: u64,
}

impl Backoff {
    /// A schedule starting at `base`, capped at `cap` (swapped if
    /// reversed), with a deterministic jitter stream from `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        let (base, cap) = if base <= cap {
            (base, cap)
        } else {
            (cap, base)
        };
        Backoff {
            base,
            cap,
            prev: base,
            state: seed,
        }
    }

    /// The next sleep in the schedule.
    pub fn next_delay(&mut self) -> Duration {
        self.state = self.state.wrapping_add(1);
        let r = splitmix64(self.state);
        let base_ms = self.base.as_millis() as u64;
        let cap_ms = self.cap.as_millis() as u64;
        let prev_ms = self.prev.as_millis() as u64;
        // Uniform in [base, max(base, prev * 3)], then clamp to cap.
        let hi = (prev_ms.saturating_mul(3)).max(base_ms);
        let span = hi - base_ms;
        let ms = if span == 0 {
            base_ms
        } else {
            base_ms + r % (span + 1)
        };
        let ms = ms.min(cap_ms).max(base_ms);
        self.prev = Duration::from_millis(ms);
        self.prev
    }
}

/// Why a call ultimately failed.
#[derive(Clone, Debug)]
pub enum ClientError {
    /// Retries exhausted; the last transient failure is included.
    BudgetExhausted {
        /// Attempts made (== the policy's budget).
        attempts: u32,
        /// Description of the final transient failure.
        last: String,
    },
    /// The server answered with a permanent error; retrying is useless.
    Permanent {
        /// The server's error kind.
        kind: ErrorKind,
        /// The server's error message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::BudgetExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
            ClientError::Permanent { kind, message } => {
                write!(f, "permanent {} error: {message}", kind.name())
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A JSON-lines client that retries transient failures with jittered
/// exponential backoff. One connection per attempt.
pub struct RemoteClient {
    addr: String,
    policy: RetryPolicy,
    /// Attempts made across all calls (for tests/telemetry).
    attempts: u64,
}

impl RemoteClient {
    /// A client for the server at `addr` (`host:port`).
    pub fn new(addr: &str, policy: RetryPolicy) -> RemoteClient {
        RemoteClient {
            addr: addr.to_string(),
            policy,
            attempts: 0,
        }
    }

    /// Total attempts made across all calls so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Sends `req` and returns the raw response line, retrying
    /// transient failures within the policy's budget.
    pub fn call(&mut self, req: &Request) -> Result<String, ClientError> {
        let line = req.to_line();
        let mut backoff = Backoff::new(self.policy.base, self.policy.cap, self.policy.seed);
        let budget = self.policy.budget.max(1);
        let mut last = String::new();
        for attempt in 0..budget {
            if attempt > 0 {
                std::thread::sleep(backoff.next_delay());
            }
            self.attempts += 1;
            match self.attempt(&line) {
                Ok(response) => match classify(&response) {
                    Verdict::Done => return Ok(response),
                    Verdict::Transient(why) => last = why,
                    Verdict::Permanent { kind, message } => {
                        return Err(ClientError::Permanent { kind, message })
                    }
                },
                Err(why) => last = why,
            }
        }
        Err(ClientError::BudgetExhausted {
            attempts: budget,
            last,
        })
    }

    /// One connect-send-receive attempt. Any IO failure (including a
    /// response with no trailing newline — a connection killed
    /// mid-line) is a transient error string.
    fn attempt(&self, line: &str) -> Result<String, String> {
        let stream = TcpStream::connect(&self.addr).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(self.policy.io_timeout)
            .map_err(|e| format!("set timeout: {e}"))?;
        stream
            .set_write_timeout(self.policy.io_timeout)
            .map_err(|e| format!("set timeout: {e}"))?;
        let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        writer
            .write_all(line.as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .and_then(|_| writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        let n = reader
            .read_line(&mut response)
            .map_err(|e| format!("receive: {e}"))?;
        if n == 0 || !response.ends_with('\n') {
            return Err("connection closed mid-response".to_string());
        }
        response.truncate(response.trim_end().len());
        if response.is_empty() {
            return Err("empty response line".to_string());
        }
        Ok(response)
    }
}

/// An opt-in pipelined client: one connection per round, up to
/// `window` requests in flight at once, replies correlated by `id`
/// (the request's index) and returned in request order. Used by the
/// chaos soak to stress the poll loop's out-of-order reply path.
///
/// Retry semantics, per round: transient failures — connect errors,
/// a connection closed mid-pipeline (which is how a stall or
/// write-high-water-mark disconnect looks from the last unanswered
/// request's point of view), and retryable server errors (`overloaded`,
/// `timeout`, `internal`, including the structured "slow reader
/// disconnected" overload) — leave their slots unanswered, and the next
/// round resends exactly those on a fresh connection after a jittered
/// backoff. Permanent server errors are final answers: their reply
/// lines are returned in place, mirroring batch semantics.
pub struct PipelinedClient {
    addr: String,
    policy: RetryPolicy,
    window: usize,
    /// Connection rounds made across all calls (for tests/telemetry).
    attempts: u64,
}

impl PipelinedClient {
    /// A client for the server at `addr` keeping up to `window`
    /// requests in flight on one connection.
    pub fn new(addr: &str, window: usize, policy: RetryPolicy) -> PipelinedClient {
        PipelinedClient {
            addr: addr.to_string(),
            policy,
            window: window.max(1),
            attempts: 0,
        }
    }

    /// Connection rounds made across all calls so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Sends every request down one pipelined connection and returns
    /// their reply lines in request order, retrying transiently-failed
    /// slots on fresh connections within the policy's budget.
    pub fn call_all(&mut self, reqs: &[Request]) -> Result<Vec<String>, ClientError> {
        let mut results: Vec<Option<String>> = vec![None; reqs.len()];
        let mut backoff = Backoff::new(self.policy.base, self.policy.cap, self.policy.seed);
        let budget = self.policy.budget.max(1);
        let mut last = String::new();
        for attempt in 0..budget {
            if attempt > 0 {
                std::thread::sleep(backoff.next_delay());
            }
            self.attempts += 1;
            if let Err(why) = self.round(reqs, &mut results) {
                last = why;
            }
            if results.iter().all(Option::is_some) {
                return Ok(results.into_iter().map(Option::unwrap).collect());
            }
            if last.is_empty() {
                let open = results.iter().filter(|r| r.is_none()).count();
                last = format!("{open} request(s) answered with retryable errors");
            }
        }
        Err(ClientError::BudgetExhausted {
            attempts: budget,
            last,
        })
    }

    /// One pipelined round over a fresh connection: sends every
    /// unanswered request (keeping at most `window` in flight), reads
    /// id-tagged replies in whatever order they arrive, and records the
    /// final ones. IO failures abort the round; unanswered slots are
    /// the next round's work either way.
    fn round(&self, reqs: &[Request], results: &mut [Option<String>]) -> Result<(), String> {
        let pending: Vec<usize> = (0..reqs.len()).filter(|&i| results[i].is_none()).collect();
        if pending.is_empty() {
            return Ok(());
        }
        let stream = TcpStream::connect(&self.addr).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(self.policy.io_timeout)
            .map_err(|e| format!("set timeout: {e}"))?;
        stream
            .set_write_timeout(self.policy.io_timeout)
            .map_err(|e| format!("set timeout: {e}"))?;
        let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        let mut reader = BufReader::new(stream);
        let mut next = 0; // cursor into `pending` not yet sent
        let mut answered = 0; // pending slots that got a reply this round
        let mut outstanding = 0;
        while answered < pending.len() {
            while next < pending.len() && outstanding < self.window {
                let i = pending[next];
                let mut req = reqs[i].clone();
                req.id = Some(Json::Num(i as f64));
                let line = req.to_line();
                writer
                    .write_all(line.as_bytes())
                    .and_then(|_| writer.write_all(b"\n"))
                    .and_then(|_| writer.flush())
                    .map_err(|e| format!("send: {e}"))?;
                next += 1;
                outstanding += 1;
            }
            let mut line = String::new();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("receive: {e}"))?;
            if n == 0 || !line.ends_with('\n') {
                return Err("connection closed mid-pipeline".to_string());
            }
            let line = line.trim().to_string();
            if line.is_empty() {
                continue;
            }
            // Replies without a usable id (e.g. a stray protocol error)
            // cannot be attributed to a slot; drop them, the slot's
            // retry will re-ask.
            let Some(i) = reply_index(&line, results.len()) else {
                continue;
            };
            if results[i].is_some() {
                continue;
            }
            answered += 1;
            outstanding = outstanding.saturating_sub(1);
            match classify(&line) {
                Verdict::Done => results[i] = Some(line),
                // Permanent server errors are final answers.
                Verdict::Permanent { .. } => results[i] = Some(line),
                // Retryable: leave the slot open for the next round.
                Verdict::Transient(_) => {}
            }
        }
        Ok(())
    }
}

/// A cluster-aware client: routes each request to the node owning its
/// cache fingerprint (client-side consistent hashing — no router hop),
/// falling over to the ring successors when the owner is unreachable.
/// The fallback node forwards to (or computes for) the key itself, so
/// a dead owner costs latency, not answers.
///
/// Routing uses [`route_fingerprint`](crate::service::route_fingerprint)
/// — the same hash the servers shard on — so a healthy cluster serves
/// every call from the shard that owns (or will own) its cache entry.
///
/// The client runs its own [`HealthTracker`]: nodes that exhaust their
/// retry budget repeatedly are skipped at routing time (unless every
/// node is DOWN, when the walk fails open to the full list — a client
/// with a stale detector must still try *something*). Two permanent
/// kinds get cluster-aware handling: `max_hops_exhausted` means "this
/// node's view of the ring loops", so the walk advances to the next
/// preference node instead of giving up — the answering node was
/// healthy, only the route was bad.
pub struct ClusterClient {
    ring: crate::ring::HashRing,
    policy: RetryPolicy,
    health: crate::health::HealthTracker,
    /// Per-call node attempts across all calls (for tests/telemetry).
    attempts: u64,
}

impl ClusterClient {
    /// A client over the cluster members `nodes` (`host:port` each).
    pub fn new<S: AsRef<str>>(nodes: &[S], policy: RetryPolicy) -> ClusterClient {
        ClusterClient {
            ring: crate::ring::HashRing::new(nodes),
            health: crate::health::HealthTracker::new(nodes, policy.seed ^ 0xC11E),
            policy,
            attempts: 0,
        }
    }

    /// The ring this client routes on.
    pub fn ring(&self) -> &crate::ring::HashRing {
        &self.ring
    }

    /// The client's private failure detector (for tests/telemetry).
    pub fn health(&self) -> &crate::health::HealthTracker {
        &self.health
    }

    /// Total node-level call attempts across all calls so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Sends `req` to the owner of its fingerprint, walking the ring's
    /// preference list (each node tried under the full retry policy)
    /// until one answers or every node's budget is spent. DOWN nodes
    /// are skipped unless the detector has lost everyone.
    pub fn call(&mut self, req: &Request) -> Result<String, ClientError> {
        let hash = crate::service::route_fingerprint(req);
        let all: Vec<String> = self
            .ring
            .preference_list(hash, self.ring.len())
            .into_iter()
            .map(str::to_string)
            .collect();
        let up: Vec<String> = all
            .iter()
            .filter(|a| !self.health.is_down(a))
            .cloned()
            .collect();
        let prefs = if up.is_empty() { all } else { up };
        let mut last = "empty ring".to_string();
        for addr in prefs {
            self.attempts += 1;
            let mut node = RemoteClient::new(&addr, self.policy);
            match node.call(req) {
                Ok(line) => {
                    self.health.record_success(&addr);
                    return Ok(line);
                }
                // The node answered (it is alive) but refused to route:
                // its forward chain hit the hop budget. The next
                // preference node may own the key outright.
                Err(ClientError::Permanent {
                    kind: ErrorKind::MaxHopsExhausted,
                    message,
                }) => {
                    self.health.record_success(&addr);
                    last = format!("{addr}: max hops exhausted ({message})");
                }
                Err(ClientError::Permanent { kind, message }) => {
                    self.health.record_success(&addr);
                    return Err(ClientError::Permanent { kind, message });
                }
                Err(ClientError::BudgetExhausted { last: why, .. }) => {
                    self.health.record_failure(&addr);
                    last = format!("{addr}: {why}");
                }
            }
        }
        Err(ClientError::BudgetExhausted {
            attempts: self.policy.budget.max(1),
            last,
        })
    }
}

/// The request index a reply line answers, when it carries one.
fn reply_index(line: &str, len: usize) -> Option<usize> {
    let v = Json::parse(line).ok()?;
    let i = v.get("id").and_then(Json::as_u64)? as usize;
    (i < len).then_some(i)
}

enum Verdict {
    Done,
    Transient(String),
    Permanent { kind: ErrorKind, message: String },
}

/// Classifies a response line against the error taxonomy. Unparseable
/// responses count as transient (protocol corruption on this attempt).
fn classify(response: &str) -> Verdict {
    let v = match Json::parse(response) {
        Ok(v) => v,
        Err(e) => return Verdict::Transient(format!("bad response JSON: {e}")),
    };
    if v.get("ok").and_then(Json::as_bool) != Some(false) {
        return Verdict::Done;
    }
    let kind = v
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .and_then(ErrorKind::from_name);
    let message = v
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    match kind {
        Some(kind) if kind.retryable() => {
            Verdict::Transient(format!("server: {} ({message})", kind.name()))
        }
        Some(kind) => Verdict::Permanent { kind, message },
        // Unknown kinds: fail open as permanent — a future server
        // speaking a newer taxonomy should not be hammered blindly.
        None => Verdict::Permanent {
            kind: ErrorKind::Protocol,
            message: format!("unknown error kind in `{response}`"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_jittered_bounded_and_deterministic() {
        let mut a = Backoff::new(Duration::from_millis(10), Duration::from_millis(100), 42);
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(100), 42);
        let delays: Vec<Duration> = (0..32).map(|_| a.next_delay()).collect();
        let same: Vec<Duration> = (0..32).map(|_| b.next_delay()).collect();
        assert_eq!(delays, same, "same seed, same schedule");
        for d in &delays {
            assert!(*d >= Duration::from_millis(10), "below base: {d:?}");
            assert!(*d <= Duration::from_millis(100), "above cap: {d:?}");
        }
        let distinct: std::collections::HashSet<u128> =
            delays.iter().map(|d| d.as_millis()).collect();
        assert!(distinct.len() > 1, "no jitter at all");
    }

    #[test]
    fn classify_follows_taxonomy() {
        assert!(matches!(
            classify(r#"{"ok":true,"op":"stats"}"#),
            Verdict::Done
        ));
        assert!(matches!(
            classify(r#"{"ok":false,"error":{"kind":"overloaded","message":"q"}}"#),
            Verdict::Transient(_)
        ));
        assert!(matches!(
            classify(r#"{"ok":false,"error":{"kind":"timeout","message":"t"}}"#),
            Verdict::Transient(_)
        ));
        assert!(matches!(
            classify(r#"{"ok":false,"error":{"kind":"parse","message":"p"}}"#),
            Verdict::Permanent {
                kind: ErrorKind::Parse,
                ..
            }
        ));
        assert!(matches!(classify("garbage"), Verdict::Transient(_)));
        assert!(matches!(
            classify(r#"{"ok":false,"error":{"kind":"martian","message":"?"}}"#),
            Verdict::Permanent { .. }
        ));
    }

    /// The poll loop's graceful-degradation errors are retryable: the
    /// structured high-water-mark disconnect is an `overloaded` reply,
    /// and a stall/idle close arrives as a bare connection close, which
    /// the attempt layer already reports as a transient string.
    #[test]
    fn overload_and_stall_disconnects_classify_as_retryable() {
        let hwm = r#"{"ok":false,"error":{"kind":"overloaded","message":"write buffer high-water mark exceeded; slow reader disconnected"}}"#;
        assert!(matches!(classify(hwm), Verdict::Transient(_)));
        let queue_full = r#"{"id":3,"ok":false,"op":"certify","error":{"kind":"overloaded","message":"queue full; retry later"}}"#;
        assert!(matches!(classify(queue_full), Verdict::Transient(_)));
    }

    #[test]
    fn pipelined_client_exhausts_budget_against_a_dead_server() {
        let mut client = PipelinedClient::new(
            "127.0.0.1:1",
            8,
            RetryPolicy {
                budget: 2,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
                io_timeout: Some(Duration::from_millis(100)),
                seed: 9,
            },
        );
        let reqs = vec![Request::new(crate::protocol::Op::Stats, ""); 3];
        match client.call_all(&reqs) {
            Err(ClientError::BudgetExhausted { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
        assert_eq!(client.attempts(), 2);
    }

    #[test]
    fn cluster_client_opens_circuits_and_fails_open_when_all_down() {
        let nodes = ["127.0.0.1:1", "127.0.0.1:2"];
        let mut client = ClusterClient::new(
            &nodes,
            RetryPolicy {
                budget: 1,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
                io_timeout: Some(Duration::from_millis(100)),
                seed: 5,
            },
        );
        let req = Request::new(crate::protocol::Op::Stats, "");
        // Every call walks both (dead) nodes, charging each a failure.
        for _ in 0..crate::health::DEFAULT_FAILURE_THRESHOLD {
            assert!(client.call(&req).is_err());
        }
        assert!(client.health().is_down(nodes[0]));
        assert!(client.health().is_down(nodes[1]));
        // With everyone DOWN the walk fails open: both are still tried
        // rather than the call failing without a single attempt.
        let before = client.attempts();
        assert!(client.call(&req).is_err());
        assert_eq!(client.attempts() - before, nodes.len() as u64);
    }

    #[test]
    fn refused_connection_exhausts_budget() {
        // Port 1 is essentially never listening.
        let mut client = RemoteClient::new(
            "127.0.0.1:1",
            RetryPolicy {
                budget: 3,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
                io_timeout: Some(Duration::from_millis(100)),
                seed: 7,
            },
        );
        let req = Request::new(crate::protocol::Op::Stats, "");
        match client.call(&req) {
            Err(ClientError::BudgetExhausted { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
        assert_eq!(client.attempts(), 3);
    }
}
