//! A supervised, bounded worker pool on `std::thread` + `mpsc`.
//!
//! - **Backpressure**: the queue is a `sync_channel` with fixed
//!   capacity; [`Pool::try_submit`] fails fast when it is full (the
//!   service answers `overloaded`), while [`Pool::submit`] blocks (used
//!   by `secflow batch`, where the producer should simply wait).
//! - **Supervision**: a job panic kills its worker (after the panic is
//!   counted and absorbed by `catch_unwind`); the supervisor thread
//!   respawns the slot, with a small backoff that grows with the slot's
//!   consecutive failures. Restarts and recycles are visible in
//!   [`PoolHealth`] and the `stats` op.
//! - **Watchdog**: jobs submitted with a deadline
//!   ([`Pool::try_submit_with`]) are tracked per slot; a worker still
//!   busy past its job's deadline (plus a grace period) is marked for
//!   recycling — it exits after the job's cooperative cancellation
//!   finally returns, and the supervisor replaces it.
//! - **Graceful drain**: [`Pool::shutdown`] closes the queue; workers
//!   exit *clean* only once it is drained, and the supervisor keeps
//!   respawning non-clean exits until every slot drained — queued jobs
//!   are never lost to a panic storm.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// How often the supervisor scans for dead workers and deadline
/// overruns.
const SUPERVISE_TICK: Duration = Duration::from_millis(2);
/// Extra headroom past a job's deadline before its worker is marked for
/// recycling (cooperative cancellation should win this race).
const WATCHDOG_GRACE_MS: u64 = 50;
/// Respawn backoff ceiling for a repeatedly-failing slot.
const MAX_RESPAWN_BACKOFF: Duration = Duration::from_millis(100);

/// Why a submission was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubmitError {
    /// The queue is at capacity; retry later.
    Full,
    /// The pool is shutting down.
    Closed,
}

/// Point-in-time pool health, surfaced by the `stats` op.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PoolHealth {
    /// Configured worker slots.
    pub workers: usize,
    /// Slots currently running a job.
    pub busy: usize,
    /// Workers respawned by the supervisor (after panics or recycles).
    pub restarts: u64,
    /// Jobs that panicked (each also killed its worker).
    pub panics: u64,
    /// Workers marked for recycling by the deadline watchdog.
    pub recycles: u64,
    /// Highest current consecutive-failure count across slots (a slot
    /// resets its count when it completes a job).
    pub max_consecutive_failures: u64,
}

/// One worker slot's shared state.
#[derive(Default)]
struct Slot {
    /// Running a job right now.
    busy: AtomicBool,
    /// Deadline of the running job, in ms since pool start (0 = none).
    deadline_ms: AtomicU64,
    /// Watchdog verdict: exit after the current job returns.
    recycle: AtomicBool,
    /// Unclean exits since this slot last completed a job.
    consecutive_failures: AtomicU64,
    /// Queue drained; do not respawn.
    clean_exit: AtomicBool,
}

struct Shared {
    rx: Mutex<Receiver<Work>>,
    slots: Vec<Slot>,
    panics: AtomicU64,
    restarts: AtomicU64,
    recycles: AtomicU64,
    start: Instant,
}

struct Work {
    job: Job,
    /// Deadline in ms since pool start; 0 = none.
    deadline_ms: u64,
}

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Relaxed);
}

/// Fixed-size supervised worker pool with a bounded job queue.
pub struct Pool {
    tx: Option<SyncSender<Work>>,
    supervisor: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl Pool {
    /// Spawns `workers` threads behind a queue of `queue_capacity`
    /// pending jobs, plus one supervisor thread. Both counts are
    /// clamped to at least 1.
    pub fn new(workers: usize, queue_capacity: usize) -> Pool {
        let workers = workers.max(1);
        let (tx, rx) = sync_channel::<Work>(queue_capacity.max(1));
        let shared = Arc::new(Shared {
            rx: Mutex::new(rx),
            slots: (0..workers).map(|_| Slot::default()).collect(),
            panics: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            recycles: AtomicU64::new(0),
            start: Instant::now(),
        });
        let mut handles: Vec<JoinHandle<()>> =
            (0..workers).map(|i| spawn_worker(&shared, i)).collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("secflow-supervisor".to_string())
                .spawn(move || supervise(&shared, &mut handles))
                .expect("spawn supervisor thread")
        };
        Pool {
            tx: Some(tx),
            supervisor: Some(supervisor),
            shared,
        }
    }

    /// Non-blocking submission; fails with [`SubmitError::Full`] under
    /// load so the caller can shed it.
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        self.try_submit_with(job, None)
    }

    /// Non-blocking submission of a job with a deadline; the watchdog
    /// recycles the worker if the job overruns it.
    pub fn try_submit_with(
        &self,
        job: impl FnOnce() + Send + 'static,
        deadline: Option<Instant>,
    ) -> Result<(), SubmitError> {
        let tx = self.tx.as_ref().ok_or(SubmitError::Closed)?;
        let work = Work {
            job: Box::new(job),
            deadline_ms: self.deadline_ms(deadline),
        };
        tx.try_send(work).map_err(|e| match e {
            TrySendError::Full(_) => SubmitError::Full,
            TrySendError::Disconnected(_) => SubmitError::Closed,
        })
    }

    /// Blocking submission: waits for queue space (producer-side
    /// backpressure for bulk work).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let tx = self.tx.as_ref().ok_or(SubmitError::Closed)?;
        let work = Work {
            job: Box::new(job),
            deadline_ms: 0,
        };
        tx.send(work).map_err(|_| SubmitError::Closed)
    }

    fn deadline_ms(&self, deadline: Option<Instant>) -> u64 {
        match deadline {
            // `max(1)`: 0 is the "no deadline" sentinel, so a deadline
            // landing exactly on pool start still registers.
            Some(d) => (d.saturating_duration_since(self.shared.start).as_millis() as u64).max(1),
            None => 0,
        }
    }

    /// Number of jobs that panicked (and were absorbed) so far.
    pub fn panic_count(&self) -> u64 {
        self.shared.panics.load(Relaxed)
    }

    /// Current pool health.
    pub fn health(&self) -> PoolHealth {
        let slots = &self.shared.slots;
        PoolHealth {
            workers: slots.len(),
            busy: slots.iter().filter(|s| s.busy.load(Relaxed)).count(),
            restarts: self.shared.restarts.load(Relaxed),
            panics: self.shared.panics.load(Relaxed),
            recycles: self.shared.recycles.load(Relaxed),
            max_consecutive_failures: slots
                .iter()
                .map(|s| s.consecutive_failures.load(Relaxed))
                .max()
                .unwrap_or(0),
        }
    }

    /// Stops accepting work, drains every queued job, and joins the
    /// workers (the supervisor respawns any that die mid-drain).
    /// Returns the final panic count.
    pub fn shutdown(mut self) -> u64 {
        self.shutdown_inner();
        self.shared.panics.load(Relaxed)
    }

    fn shutdown_inner(&mut self) {
        self.tx.take(); // close the queue: workers exit after draining
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn spawn_worker(shared: &Arc<Shared>, slot: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("secflow-worker-{slot}"))
        .spawn(move || worker_loop(&shared, slot))
        .expect("spawn worker thread")
}

/// Restarts dead workers (with per-slot failure backoff), watches busy
/// slots for deadline overruns, and returns once every slot has exited
/// clean (queue closed and drained).
fn supervise(shared: &Arc<Shared>, handles: &mut [JoinHandle<()>]) {
    loop {
        std::thread::sleep(SUPERVISE_TICK);
        let now_ms = shared.start.elapsed().as_millis() as u64;
        let mut all_clean = true;
        for (i, slot) in shared.slots.iter().enumerate() {
            // Watchdog: busy past the job's deadline + grace → recycle.
            if slot.busy.load(Relaxed) {
                let deadline = slot.deadline_ms.load(Relaxed);
                if deadline != 0
                    && now_ms > deadline + WATCHDOG_GRACE_MS
                    && !slot.recycle.swap(true, Relaxed)
                {
                    bump(&shared.recycles);
                }
            }
            if slot.clean_exit.load(Relaxed) {
                continue;
            }
            all_clean = false;
            if handles[i].is_finished() {
                // Unclean death (panic or recycle): respawn, backing
                // off while the slot keeps failing.
                let failures = slot.consecutive_failures.load(Relaxed);
                if failures > 1 {
                    let backoff = Duration::from_millis(1 << failures.min(7));
                    std::thread::sleep(backoff.min(MAX_RESPAWN_BACKOFF));
                }
                let fresh = spawn_worker(shared, i);
                let dead = std::mem::replace(&mut handles[i], fresh);
                let _ = dead.join();
                bump(&shared.restarts);
            }
        }
        if all_clean {
            // Every slot drained the queue and exited (or is exiting)
            // clean; joining cannot block.
            for handle in handles.iter_mut() {
                let placeholder = std::thread::spawn(|| {});
                let _ = std::mem::replace(handle, placeholder).join();
            }
            return;
        }
    }
}

fn worker_loop(shared: &Shared, slot_idx: usize) {
    let slot = &shared.slots[slot_idx];
    loop {
        // Hold the lock only while dequeueing, never while running.
        let work = match shared.rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return, // poisoned: a sibling died *while dequeueing*
        };
        match work {
            Ok(work) => {
                slot.deadline_ms.store(work.deadline_ms, Relaxed);
                slot.busy.store(true, Relaxed);
                let outcome = catch_unwind(AssertUnwindSafe(work.job));
                slot.busy.store(false, Relaxed);
                slot.deadline_ms.store(0, Relaxed);
                match outcome {
                    Ok(()) => {
                        slot.consecutive_failures.store(0, Relaxed);
                        if slot.recycle.swap(false, Relaxed) {
                            // The watchdog asked for a fresh thread; die
                            // and let the supervisor respawn this slot.
                            return;
                        }
                    }
                    Err(_) => {
                        bump(&shared.panics);
                        slot.consecutive_failures.fetch_add(1, Relaxed);
                        slot.recycle.store(false, Relaxed);
                        return; // the supervisor respawns this slot
                    }
                }
            }
            Err(_) => {
                slot.clean_exit.store(true, Relaxed);
                return; // queue closed and drained
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_jobs_and_drains_on_shutdown() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = Pool::new(4, 64);
        for _ in 0..50 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                std::thread::sleep(Duration::from_millis(1));
                done.fetch_add(1, Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Relaxed), 50);
    }

    #[test]
    fn try_submit_sheds_when_full() {
        let pool = Pool::new(1, 2);
        let gate = Arc::new(Mutex::new(()));
        let hold = gate.lock().unwrap();
        // One job blocks the worker; then fill the queue.
        for _ in 0..3 {
            let gate = Arc::clone(&gate);
            let _ = pool.try_submit(move || {
                drop(gate.lock());
            });
        }
        let mut saw_full = false;
        for _ in 0..10 {
            let gate = Arc::clone(&gate);
            if pool.try_submit(move || drop(gate.lock())) == Err(SubmitError::Full) {
                saw_full = true;
                break;
            }
        }
        assert!(saw_full, "bounded queue never reported Full");
        drop(hold);
        pool.shutdown();
    }

    #[test]
    fn survives_panicking_jobs_by_respawning_workers() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = Pool::new(2, 16);
        for i in 0..20 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                if i % 4 == 0 {
                    panic!("job {i} exploded");
                }
                done.fetch_add(1, Relaxed);
            })
            .unwrap();
        }
        // Every panic kills a worker; the drain still completes because
        // the supervisor respawns them.
        let health = pool.health();
        let panics = pool.shutdown();
        assert_eq!(done.load(Relaxed), 15);
        assert_eq!(panics, 5);
        assert_eq!(health.workers, 2);
    }

    #[test]
    fn health_reports_restarts_after_panics() {
        let pool = Pool::new(1, 16);
        pool.submit(|| panic!("boom")).unwrap();
        // Wait for the supervisor to notice and respawn.
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.health().restarts == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let health = pool.health();
        assert_eq!(health.panics, 1);
        assert!(health.restarts >= 1, "{health:?}");
        // The respawned worker still serves jobs.
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.submit(move || {
            d.fetch_add(1, Relaxed);
        })
        .unwrap();
        pool.shutdown();
        assert_eq!(done.load(Relaxed), 1);
    }

    #[test]
    fn watchdog_recycles_deadline_overruns() {
        let pool = Pool::new(1, 4);
        let release = Arc::new(AtomicBool::new(false));
        let r = Arc::clone(&release);
        // A job that overruns its 1ms deadline until released.
        pool.try_submit_with(
            move || {
                while !r.load(Relaxed) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            },
            Some(Instant::now() + Duration::from_millis(1)),
        )
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.health().recycles == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(pool.health().recycles >= 1, "{:?}", pool.health());
        release.store(true, Relaxed);
        // Once the job returns, the worker is replaced and keeps serving.
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.submit(move || {
            d.fetch_add(1, Relaxed);
        })
        .unwrap();
        pool.shutdown();
        assert_eq!(done.load(Relaxed), 1);
    }
}
