//! A bounded worker pool on `std::thread` + `mpsc`.
//!
//! - **Backpressure**: the queue is a `sync_channel` with fixed
//!   capacity; [`Pool::try_submit`] fails fast when it is full (the
//!   service answers `overloaded`), while [`Pool::submit`] blocks (used
//!   by `secflow batch`, where the producer should simply wait).
//! - **Panic isolation**: each job runs under `catch_unwind`; a
//!   panicking job increments a counter and the worker keeps serving.
//! - **Graceful drain**: [`Pool::shutdown`] closes the queue, lets the
//!   workers finish everything already accepted, and joins them.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubmitError {
    /// The queue is at capacity; retry later.
    Full,
    /// The pool is shutting down.
    Closed,
}

/// Fixed-size worker pool with a bounded job queue.
pub struct Pool {
    tx: Option<SyncSender<Job>>,
    handles: Vec<JoinHandle<()>>,
    panics: Arc<AtomicU64>,
}

impl Pool {
    /// Spawns `workers` threads behind a queue of `queue_capacity`
    /// pending jobs. Both are clamped to at least 1.
    pub fn new(workers: usize, queue_capacity: usize) -> Pool {
        let (tx, rx) = sync_channel::<Job>(queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let panics = Arc::new(AtomicU64::new(0));
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let panics = Arc::clone(&panics);
                std::thread::Builder::new()
                    .name(format!("secflow-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &panics))
                    .expect("spawn worker thread")
            })
            .collect();
        Pool {
            tx: Some(tx),
            handles,
            panics,
        }
    }

    /// Non-blocking submission; fails with [`SubmitError::Full`] under
    /// load so the caller can shed it.
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let tx = self.tx.as_ref().ok_or(SubmitError::Closed)?;
        tx.try_send(Box::new(job)).map_err(|e| match e {
            TrySendError::Full(_) => SubmitError::Full,
            TrySendError::Disconnected(_) => SubmitError::Closed,
        })
    }

    /// Blocking submission: waits for queue space (producer-side
    /// backpressure for bulk work).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let tx = self.tx.as_ref().ok_or(SubmitError::Closed)?;
        tx.send(Box::new(job)).map_err(|_| SubmitError::Closed)
    }

    /// Number of jobs that panicked (and were absorbed) so far.
    pub fn panic_count(&self) -> u64 {
        self.panics.load(Relaxed)
    }

    /// Stops accepting work, drains every queued job, and joins the
    /// workers. Returns the final panic count.
    pub fn shutdown(mut self) -> u64 {
        self.tx.take(); // close the queue: workers exit after draining
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        self.panics.load(Relaxed)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.tx.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, panics: &AtomicU64) {
    loop {
        // Hold the lock only while dequeueing, never while running.
        let job = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return, // a sibling panicked *while dequeueing*
        };
        match job {
            Ok(job) => {
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    panics.fetch_add(1, Relaxed);
                }
            }
            Err(_) => return, // queue closed and drained
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_jobs_and_drains_on_shutdown() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = Pool::new(4, 64);
        for _ in 0..50 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                std::thread::sleep(Duration::from_millis(1));
                done.fetch_add(1, Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Relaxed), 50);
    }

    #[test]
    fn try_submit_sheds_when_full() {
        let pool = Pool::new(1, 2);
        let gate = Arc::new(Mutex::new(()));
        let hold = gate.lock().unwrap();
        // One job blocks the worker; then fill the queue.
        for _ in 0..3 {
            let gate = Arc::clone(&gate);
            let _ = pool.try_submit(move || {
                drop(gate.lock());
            });
        }
        let mut saw_full = false;
        for _ in 0..10 {
            let gate = Arc::clone(&gate);
            if pool.try_submit(move || drop(gate.lock())) == Err(SubmitError::Full) {
                saw_full = true;
                break;
            }
        }
        assert!(saw_full, "bounded queue never reported Full");
        drop(hold);
        pool.shutdown();
    }

    #[test]
    fn survives_panicking_jobs() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = Pool::new(2, 16);
        for i in 0..20 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                if i % 4 == 0 {
                    panic!("job {i} exploded");
                }
                done.fetch_add(1, Relaxed);
            })
            .unwrap();
        }
        let panics = pool.shutdown();
        assert_eq!(done.load(Relaxed), 15);
        assert_eq!(panics, 5);
    }
}
