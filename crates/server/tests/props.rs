//! Property tests for the robustness primitives: the retrying client's
//! backoff schedule and the deadline arithmetic behind cancellation
//! tokens.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use secflow_server::{
    deadline_after_ms, Backoff, CancelToken, ClientError, Op, RemoteClient, Request, RetryPolicy,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every delay is within `[base, cap]`, and the schedule is a pure
    /// function of the seed.
    #[test]
    fn backoff_stays_within_base_and_cap(
        base_ms in 1u64..50,
        span_ms in 0u64..450,
        seed in 0u64..1_000_000,
    ) {
        let base = Duration::from_millis(base_ms);
        let cap = Duration::from_millis(base_ms + span_ms);
        let mut schedule = Backoff::new(base, cap, seed);
        let mut replay = Backoff::new(base, cap, seed);
        for _ in 0..64 {
            let d = schedule.next_delay();
            prop_assert!(d >= base, "delay {:?} under base {:?}", d, base);
            prop_assert!(d <= cap, "delay {:?} over cap {:?}", d, cap);
            prop_assert_eq!(d, replay.next_delay());
        }
    }

    /// Decorrelated jitter: each delay is at most 3x the previous one
    /// (before the cap), so growth is exponential-bounded, and once the
    /// cap is reached the schedule stays there (monotone cap).
    #[test]
    fn backoff_growth_is_bounded_by_three_times_previous(
        base_ms in 1u64..20,
        seed in 0u64..1_000_000,
    ) {
        let base = Duration::from_millis(base_ms);
        let cap = Duration::from_millis(10_000);
        let mut schedule = Backoff::new(base, cap, seed);
        let mut prev = base;
        for _ in 0..64 {
            let d = schedule.next_delay();
            let growth_cap = (prev * 3).max(base).min(cap);
            prop_assert!(
                d <= growth_cap,
                "delay {:?} exceeds 3x previous {:?}", d, prev
            );
            prop_assert!(d >= base && d <= cap);
            prev = d;
        }
    }

    /// Constructing with reversed bounds swaps them instead of
    /// producing an empty (panicking) range.
    #[test]
    fn backoff_swaps_reversed_bounds(
        a in 1u64..200,
        b in 1u64..200,
        seed in 0u64..1_000_000,
    ) {
        let lo = Duration::from_millis(a.min(b));
        let hi = Duration::from_millis(a.max(b));
        let mut schedule = Backoff::new(
            Duration::from_millis(a),
            Duration::from_millis(b),
            seed,
        );
        for _ in 0..32 {
            let d = schedule.next_delay();
            prop_assert!(d >= lo && d <= hi, "delay {:?} outside [{:?}, {:?}]", d, lo, hi);
        }
    }

    /// Deadline arithmetic is total: zero and overflow-adjacent
    /// timeouts mean "no deadline" instead of panicking, and otherwise
    /// the deadline is exactly `now + timeout`.
    #[test]
    fn deadline_arithmetic_never_panics(timeout_ms in 0u64..u64::MAX) {
        let now = Instant::now();
        for t in [timeout_ms, u64::MAX, u64::MAX - 1, timeout_ms / 2] {
            let d = deadline_after_ms(now, t);
            if t == 0 {
                prop_assert!(d.is_none(), "0 disables the deadline");
            } else {
                match now.checked_add(Duration::from_millis(t)) {
                    Some(expected) => prop_assert_eq!(d, Some(expected)),
                    None => prop_assert!(d.is_none(), "overflow means no deadline"),
                }
            }

            // Tokens built from the same arithmetic: remaining() is
            // total, and a zero/huge timeout is never born expired.
            let token = CancelToken::after_ms(t);
            let _ = token.remaining();
            if t == 0 || t > 60_000 {
                prop_assert!(!token.expired(), "timeout {} ms expired immediately", t);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The retry budget is exact: against an always-refusing endpoint
    /// the client makes precisely `budget` attempts, then reports the
    /// exhaustion.
    #[test]
    fn retry_budget_is_exact(budget in 1u32..5) {
        // Port 1 on localhost refuses connections immediately.
        let mut client = RemoteClient::new(
            "127.0.0.1:1",
            RetryPolicy {
                budget,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
                io_timeout: Some(Duration::from_millis(100)),
                seed: budget as u64,
            },
        );
        let req = Request::new(Op::Stats, "");
        match client.call(&req) {
            Err(ClientError::BudgetExhausted { attempts, .. }) => {
                prop_assert_eq!(attempts, budget);
                prop_assert_eq!(client.attempts(), budget as u64);
            }
            other => prop_assert!(false, "expected budget exhaustion, got {:?}", other),
        }
    }
}
