//! Front-end robustness: the lexer and parser must never panic, on any
//! input — they return structured diagnostics instead.

use proptest::prelude::*;

use secflow_lang::lexer::lex;
use secflow_lang::parse;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup: lex and parse return Ok or Err, never panic.
    #[test]
    fn never_panics_on_arbitrary_input(input in ".{0,200}") {
        let _ = lex(&input);
        let _ = parse(&input);
    }

    /// Keyword soup (more likely to get deep into the parser).
    #[test]
    fn never_panics_on_token_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("begin"), Just("end"), Just("cobegin"), Just("coend"),
                Just("if"), Just("then"), Just("else"), Just("while"),
                Just("do"), Just("wait"), Just("signal"), Just("var"),
                Just("integer"), Just("semaphore"), Just("skip"),
                Just("x"), Just("y"), Just(":="), Just(";"), Just("||"),
                Just("("), Just(")"), Just("0"), Just("1"), Just("+"),
                Just("="), Just("#"), Just(","), Just(":"),
            ],
            0..40,
        )
    ) {
        let input = words.join(" ");
        let _ = parse(&input);
    }

    /// Diagnostics always render without panicking, with the offending
    /// source attached.
    #[test]
    fn diagnostics_always_render(input in ".{0,200}") {
        if let Err(d) = parse(&input) {
            let rendered = d.render(&input);
            prop_assert!(rendered.contains("error["));
        }
    }
}

#[test]
fn pathological_nesting_depth() {
    // Debug-mode parser frames are large; give the probe a deterministic
    // stack so the test measures the parser's bound, not the harness's
    // thread size.
    let handle = std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(pathological_nesting_depth_body)
        .unwrap();
    handle.join().unwrap();
}

fn pathological_nesting_depth_body() {
    // 50k open parens must produce a diagnostic, not a stack overflow:
    // the parser enforces a nesting bound.
    let mut src = String::from("var x : integer; x := ");
    for _ in 0..50_000 {
        src.push('(');
    }
    let err = parse(&src).unwrap_err();
    assert!(err.message.contains("nesting"), "{err}");

    // Deep if-nesting hits the same bound.
    let mut src = String::from("var x : integer; ");
    for _ in 0..50_000 {
        src.push_str("if x = 0 then ");
    }
    src.push_str("skip");
    let err = parse(&src).unwrap_err();
    assert!(err.message.contains("nesting"), "{err}");

    // Real nesting depths stay comfortably within the bound.
    let mut src = String::from("var x : integer; x := ");
    for _ in 0..250 {
        src.push('(');
    }
    src.push('1');
    for _ in 0..250 {
        src.push(')');
    }
    assert!(parse(&src).is_ok());
}

#[test]
fn empty_and_whitespace_inputs() {
    assert!(parse("").is_err());
    assert!(parse("   \n\t  ").is_err());
    assert!(parse("-- just a comment").is_err());
}

#[test]
fn error_positions_are_in_bounds() {
    let cases = [
        "var : integer; skip",
        "x :=",
        "begin x := 1",
        "cobegin skip coend",
        "wait()",
        "var x : integer; if then skip",
    ];
    for src in cases {
        let err = parse(src).unwrap_err();
        assert!(
            err.span.start as usize <= src.len() && err.span.end as usize <= src.len() + 1,
            "{src}: span {:?}",
            err.span
        );
        let _ = err.render(src);
    }
}
