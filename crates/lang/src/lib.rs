//! Front-end for the simple parallel language of Reitman (SOSP 1979).
//!
//! The paper (§2.0) defines a minimal imperative language whose statements
//! are assignment, alternation (`if`), iteration (`while`), composition
//! (`begin … end`), concurrency (`cobegin S1 || … || Sn coend`) and the
//! indivisible semaphore operations `wait(sem)` / `signal(sem)`. This crate
//! provides everything needed to work with that language as data:
//!
//! - [`lexer`] and [`parser`] turn source text into a [`Program`]
//!   (declaration table + statement tree) with full source [`span`]s and
//!   structured [`diag`]nostics;
//! - [`ast`] is the typed syntax tree shared by every analysis in the
//!   workspace;
//! - [`printer`] renders ASTs back to parseable concrete syntax;
//! - [`builder`] constructs ASTs programmatically (used by the workload
//!   generators);
//! - [`metrics`] measures program "length" for the linear-time benchmark.
//!
//! # Examples
//!
//! ```
//! use secflow_lang::parse;
//!
//! let program = parse(
//!     "var x, y : integer; sem : semaphore initially(0);
//!      cobegin
//!        begin if x = 0 then signal(sem) end
//!      ||
//!        begin wait(sem); y := 0 end
//!      coend",
//! )
//! .unwrap();
//! assert!(program.body.is_concurrent());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod diag;
pub mod lexer;
pub mod metrics;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;

pub use ast::{BinOp, Expr, Program, Stmt, SymbolTable, UnOp, VarId, VarInfo, VarKind};
pub use diag::{Diag, Diagnostic, ErrorCode, Severity};
pub use parser::{parse, parse_expr};
pub use printer::{print_expr, print_program, print_stmt};
pub use span::Span;
