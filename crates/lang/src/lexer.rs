//! The lexer: source text → token stream.

use crate::diag::{Diagnostic, ErrorCode};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lexes `source` into a token vector ending with an [`TokenKind::Eof`]
/// token.
///
/// Comments run from `--` or `//` to end of line. Whitespace separates
/// tokens and is otherwise insignificant.
///
/// # Errors
///
/// Returns a [`Diagnostic`] for unknown characters, malformed operators,
/// and integer literals that overflow `i64`.
///
/// # Examples
///
/// ```
/// use secflow_lang::lexer::lex;
/// use secflow_lang::token::TokenKind;
///
/// let tokens = lex("x := x + 1").unwrap();
/// assert_eq!(tokens.len(), 6); // x, :=, x, +, 1, <eof>
/// assert_eq!(tokens[1].kind, TokenKind::Assign);
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostic> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn span_from(&self, start: usize) -> Span {
        Span::new(start as u32, self.pos as u32)
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        let span = self.span_from(start);
        self.tokens.push(Token::new(kind, span));
    }

    fn error(&self, code: ErrorCode, msg: String, start: usize) -> Diagnostic {
        Diagnostic::error(code, msg, self.span_from(start))
    }

    fn run(mut self) -> Result<Vec<Token>, Diagnostic> {
        while let Some(b) = self.peek() {
            let start = self.pos;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'-' if self.peek2() == Some(b'-') => self.skip_line_comment(),
                b'/' if self.peek2() == Some(b'/') => self.skip_line_comment(),
                b'0'..=b'9' => self.lex_int(start)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_word(start),
                b':' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Assign, start);
                    } else {
                        self.push(TokenKind::Colon, start);
                    }
                }
                b';' => {
                    self.bump();
                    self.push(TokenKind::Semi, start);
                }
                b',' => {
                    self.bump();
                    self.push(TokenKind::Comma, start);
                }
                b'(' => {
                    self.bump();
                    self.push(TokenKind::LParen, start);
                }
                b')' => {
                    self.bump();
                    self.push(TokenKind::RParen, start);
                }
                b'|' => {
                    self.bump();
                    if self.peek() == Some(b'|') {
                        self.bump();
                        self.push(TokenKind::Parallel, start);
                    } else {
                        return Err(self.error(
                            ErrorCode::UnknownCharacter,
                            "expected `||` (a single `|` is not a token)".to_string(),
                            start,
                        ));
                    }
                }
                b'+' => {
                    self.bump();
                    self.push(TokenKind::Plus, start);
                }
                b'-' => {
                    self.bump();
                    self.push(TokenKind::Minus, start);
                }
                b'*' => {
                    self.bump();
                    self.push(TokenKind::Star, start);
                }
                b'/' => {
                    self.bump();
                    self.push(TokenKind::Slash, start);
                }
                b'%' => {
                    self.bump();
                    self.push(TokenKind::Percent, start);
                }
                b'=' => {
                    self.bump();
                    self.push(TokenKind::Eq, start);
                }
                b'#' => {
                    self.bump();
                    self.push(TokenKind::Ne, start);
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Ne, start);
                    } else {
                        return Err(self.error(
                            ErrorCode::UnknownCharacter,
                            "expected `!=` (a single `!` is not a token)".to_string(),
                            start,
                        ));
                    }
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            self.push(TokenKind::Le, start);
                        }
                        Some(b'>') => {
                            self.bump();
                            self.push(TokenKind::Ne, start);
                        }
                        _ => self.push(TokenKind::Lt, start),
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Ge, start);
                    } else {
                        self.push(TokenKind::Gt, start);
                    }
                }
                other => {
                    self.bump();
                    return Err(self.error(
                        ErrorCode::UnknownCharacter,
                        format!("unknown character `{}`", other as char),
                        start,
                    ));
                }
            }
        }
        let eof = Span::new(self.pos as u32, self.pos as u32);
        self.tokens.push(Token::new(TokenKind::Eof, eof));
        Ok(self.tokens)
    }

    fn skip_line_comment(&mut self) {
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
    }

    fn lex_int(&mut self, start: usize) -> Result<(), Diagnostic> {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("digits are ascii");
        match text.parse::<i64>() {
            Ok(n) => {
                self.push(TokenKind::Int(n), start);
                Ok(())
            }
            Err(_) => Err(self.error(
                ErrorCode::IntegerOverflow,
                format!("integer literal `{text}` does not fit in 64 bits"),
                start,
            )),
        }
    }

    fn lex_word(&mut self, start: usize) {
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("idents are ascii");
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()));
        self.push(kind, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_assignment() {
        assert_eq!(
            kinds("x := 42"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(42),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_keywords_and_parallel_bars() {
        assert_eq!(
            kinds("cobegin skip || skip coend"),
            vec![
                TokenKind::Cobegin,
                TokenKind::Skip,
                TokenKind::Parallel,
                TokenKind::Skip,
                TokenKind::Coend,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn hash_and_friends_mean_not_equal() {
        assert_eq!(kinds("x # 0")[1], TokenKind::Ne);
        assert_eq!(kinds("x <> 0")[1], TokenKind::Ne);
        assert_eq!(kinds("x != 0")[1], TokenKind::Ne);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= ="),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("x -- the rest is ignored\n:= 1 // also ignored"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(1),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comment_minus_minus_vs_minus() {
        assert_eq!(
            kinds("1 - 2"),
            vec![
                TokenKind::Int(1),
                TokenKind::Minus,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_point_into_source() {
        let tokens = lex("ab := 7").unwrap();
        assert_eq!(tokens[0].span, Span::new(0, 2));
        assert_eq!(tokens[1].span, Span::new(3, 5));
        assert_eq!(tokens[2].span, Span::new(6, 7));
    }

    #[test]
    fn single_bar_is_an_error() {
        let err = lex("a | b").unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownCharacter);
    }

    #[test]
    fn single_bang_is_an_error() {
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn unknown_character_is_reported() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.message.contains('$'));
    }

    #[test]
    fn huge_literal_overflows() {
        let err = lex("99999999999999999999").unwrap_err();
        assert_eq!(err.code, ErrorCode::IntegerOverflow);
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
    }

    #[test]
    fn identifiers_may_contain_digits_and_underscores() {
        assert_eq!(
            kinds("sem_1 x2"),
            vec![
                TokenKind::Ident("sem_1".into()),
                TokenKind::Ident("x2".into()),
                TokenKind::Eof
            ]
        );
    }
}
