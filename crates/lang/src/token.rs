//! Tokens of the simple parallel language.

use std::fmt;

use crate::span::Span;

/// The kind of a lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    // Literals and identifiers.
    /// An integer literal.
    Int(i64),
    /// An identifier (variable or semaphore name).
    Ident(String),

    // Keywords.
    /// `var`
    Var,
    /// `integer`
    Integer,
    /// `boolean`
    Boolean,
    /// `semaphore`
    Semaphore,
    /// `initially`
    Initially,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `while`
    While,
    /// `do`
    Do,
    /// `begin`
    Begin,
    /// `end`
    End,
    /// `cobegin`
    Cobegin,
    /// `coend`
    Coend,
    /// `wait`
    Wait,
    /// `signal`
    Signal,
    /// `skip`
    Skip,
    /// `true`
    True,
    /// `false`
    False,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,

    // Punctuation and operators.
    /// `:=`
    Assign,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `||` (process separator inside `cobegin`)
    Parallel,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `#`, `<>` or `!=` (the paper writes `#` for "not equal")
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// The keyword kind for `word`, if `word` is a reserved word.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "var" => TokenKind::Var,
            "integer" => TokenKind::Integer,
            "boolean" => TokenKind::Boolean,
            "semaphore" => TokenKind::Semaphore,
            "initially" => TokenKind::Initially,
            "if" => TokenKind::If,
            "then" => TokenKind::Then,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "do" => TokenKind::Do,
            "begin" => TokenKind::Begin,
            "end" => TokenKind::End,
            "cobegin" => TokenKind::Cobegin,
            "coend" => TokenKind::Coend,
            "wait" => TokenKind::Wait,
            "signal" => TokenKind::Signal,
            "skip" => TokenKind::Skip,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "not" => TokenKind::Not,
            _ => return None,
        })
    }

    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(n) => format!("integer literal `{n}`"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{other}`"),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokenKind::Int(n) => return write!(f, "{n}"),
            TokenKind::Ident(s) => return write!(f, "{s}"),
            TokenKind::Var => "var",
            TokenKind::Integer => "integer",
            TokenKind::Boolean => "boolean",
            TokenKind::Semaphore => "semaphore",
            TokenKind::Initially => "initially",
            TokenKind::If => "if",
            TokenKind::Then => "then",
            TokenKind::Else => "else",
            TokenKind::While => "while",
            TokenKind::Do => "do",
            TokenKind::Begin => "begin",
            TokenKind::End => "end",
            TokenKind::Cobegin => "cobegin",
            TokenKind::Coend => "coend",
            TokenKind::Wait => "wait",
            TokenKind::Signal => "signal",
            TokenKind::Skip => "skip",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::And => "and",
            TokenKind::Or => "or",
            TokenKind::Not => "not",
            TokenKind::Assign => ":=",
            TokenKind::Colon => ":",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::Parallel => "||",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Eq => "=",
            TokenKind::Ne => "#",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Eof => "<eof>",
        };
        write!(f, "{s}")
    }
}

/// A token together with its source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_recognized() {
        assert_eq!(TokenKind::keyword("cobegin"), Some(TokenKind::Cobegin));
        assert_eq!(TokenKind::keyword("wait"), Some(TokenKind::Wait));
        assert_eq!(TokenKind::keyword("frobnicate"), None);
    }

    #[test]
    fn keywords_are_case_sensitive() {
        assert_eq!(TokenKind::keyword("If"), None);
        assert_eq!(TokenKind::keyword("WHILE"), None);
    }

    #[test]
    fn display_round_trips_punctuation() {
        assert_eq!(TokenKind::Assign.to_string(), ":=");
        assert_eq!(TokenKind::Parallel.to_string(), "||");
        assert_eq!(TokenKind::Ne.to_string(), "#");
    }

    #[test]
    fn describe_quotes_tokens() {
        assert_eq!(TokenKind::Int(42).describe(), "integer literal `42`");
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::Semi.describe(), "`;`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
