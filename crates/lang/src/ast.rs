//! Abstract syntax of the simple parallel language (paper §2.0).
//!
//! The language has exactly the statement forms of the paper: assignment,
//! alternation, iteration, composition, concurrency (`cobegin … coend`) and
//! semaphore synchronization (`wait`/`signal`), plus an explicit `skip`.
//! Boolean literals are desugared to the integers `1`/`0`; a condition is
//! "true" when it evaluates to a non-zero value.

use std::collections::HashMap;
use std::fmt;

use crate::diag::{Diagnostic, ErrorCode};
use crate::span::Span;

/// A compact identifier for a declared variable or semaphore.
///
/// `VarId`s index into the program's [`SymbolTable`]; analyses use them as
/// dense array indices, which keeps the Concurrent Flow Mechanism linear in
/// the program length.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Whether a name denotes a data variable or a semaphore.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VarKind {
    /// An integer (or boolean) program variable.
    Data,
    /// A counting semaphore operated on by `wait`/`signal` only.
    Semaphore,
}

impl fmt::Display for VarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarKind::Data => write!(f, "variable"),
            VarKind::Semaphore => write!(f, "semaphore"),
        }
    }
}

/// Declaration-site information about a name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VarInfo {
    /// Source name.
    pub name: String,
    /// Data variable or semaphore.
    pub kind: VarKind,
    /// Initial value (semaphores: initial count, default 0; data: 0).
    pub init: i64,
    /// Where the name was declared.
    pub decl_span: Span,
}

/// The table of declared names of a program.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SymbolTable {
    vars: Vec<VarInfo>,
    by_name: HashMap<String, VarId>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Declares a new name.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorCode::DuplicateDeclaration`] when `name` is already
    /// declared, with a note pointing at the first declaration.
    pub fn declare(
        &mut self,
        name: &str,
        kind: VarKind,
        init: i64,
        decl_span: Span,
    ) -> Result<VarId, Diagnostic> {
        if let Some(&existing) = self.by_name.get(name) {
            let first = self.vars[existing.index()].decl_span;
            return Err(Diagnostic::error(
                ErrorCode::DuplicateDeclaration,
                format!("`{name}` is declared more than once"),
                decl_span,
            )
            .with_note("first declared here", first));
        }
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.to_string(),
            kind,
            init,
            decl_span,
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks a name up.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// Declaration info for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this table.
    pub fn info(&self, id: VarId) -> &VarInfo {
        &self.vars[id.index()]
    }

    /// The source name of `id`.
    pub fn name(&self, id: VarId) -> &str {
        &self.info(id).name
    }

    /// The kind of `id`.
    pub fn kind(&self, id: VarId) -> VarKind {
        self.info(id).kind
    }

    /// Number of declared names.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// `true` iff nothing is declared.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates over `(id, info)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &VarInfo)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| (VarId(i as u32), v))
    }

    /// Ids of all data variables.
    pub fn data_vars(&self) -> Vec<VarId> {
        self.iter()
            .filter(|(_, v)| v.kind == VarKind::Data)
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all semaphores.
    pub fn semaphores(&self) -> Vec<VarId> {
        self.iter()
            .filter(|(_, v)| v.kind == VarKind::Semaphore)
            .map(|(id, _)| id)
            .collect()
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Boolean negation `not e` (non-zero ↦ 0, zero ↦ 1).
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "-"),
            UnOp::Not => write!(f, "not"),
        }
    }
}

/// Binary operators. All operate on integers; comparisons and logical
/// operators yield `1` (true) or `0` (false).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncating; division by zero is a runtime fault)
    Div,
    /// `%` (remainder; zero divisor is a runtime fault)
    Mod,
    /// `=`
    Eq,
    /// `#` (not equal)
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and` (both non-zero)
    And,
    /// `or` (either non-zero)
    Or,
}

impl BinOp {
    /// Binding power used by the pretty-printer and parser; higher binds
    /// tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "#",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        };
        write!(f, "{s}")
    }
}

/// Expressions.
///
/// Per §2.1, the security class of a constant is `low` and the class of
/// `e1 op e2` is `class(e1) ⊕ class(e2)` for every operator; the analyses
/// therefore only need the variables occurring in an expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// An integer constant.
    Const(i64, Span),
    /// A variable read.
    Var(VarId, Span),
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        arg: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Const(_, s) | Expr::Var(_, s) => *s,
            Expr::Unary { span, .. } | Expr::Binary { span, .. } => *span,
        }
    }

    /// Calls `f` on every variable read in the expression (with
    /// repetition, in left-to-right order).
    pub fn for_each_var(&self, f: &mut impl FnMut(VarId)) {
        match self {
            Expr::Const(..) => {}
            Expr::Var(v, _) => f(*v),
            Expr::Unary { arg, .. } => arg.for_each_var(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.for_each_var(f);
                rhs.for_each_var(f);
            }
        }
    }

    /// The distinct variables read by the expression, in first-occurrence
    /// order.
    pub fn vars(&self) -> Vec<VarId> {
        let mut seen = Vec::new();
        self.for_each_var(&mut |v| {
            if !seen.contains(&v) {
                seen.push(v);
            }
        });
        seen
    }

    /// Number of AST nodes in the expression.
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Const(..) | Expr::Var(..) => 1,
            Expr::Unary { arg, .. } => 1 + arg.node_count(),
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.node_count() + rhs.node_count(),
        }
    }
}

/// Statements — exactly the forms of paper §2.0 plus `skip`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// The empty statement.
    Skip(Span),
    /// `x := e`
    Assign {
        /// Variable assigned to.
        var: VarId,
        /// Assigned expression.
        expr: Expr,
        /// Source location.
        span: Span,
    },
    /// `if e then S1 [else S2]` — a missing `else` behaves as `skip`.
    If {
        /// The guard.
        cond: Expr,
        /// The `then` branch.
        then_branch: Box<Stmt>,
        /// The optional `else` branch.
        else_branch: Option<Box<Stmt>>,
        /// Source location.
        span: Span,
    },
    /// `while e do S`
    While {
        /// The guard.
        cond: Expr,
        /// The loop body.
        body: Box<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `begin S1; …; Sn end`
    Seq {
        /// The component statements, in order.
        stmts: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `cobegin S1 || … || Sn coend`
    Cobegin {
        /// The concurrent processes.
        branches: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `wait(sem)` — indivisibly blocks until the semaphore is positive,
    /// then decrements it.
    Wait {
        /// The semaphore.
        sem: VarId,
        /// Source location.
        span: Span,
    },
    /// `signal(sem)` — indivisibly increments the semaphore.
    Signal {
        /// The semaphore.
        sem: VarId,
        /// Source location.
        span: Span,
    },
}

impl Stmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Skip(s) => *s,
            Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Seq { span, .. }
            | Stmt::Cobegin { span, .. }
            | Stmt::Wait { span, .. }
            | Stmt::Signal { span, .. } => *span,
        }
    }

    /// Pre-order walk over this statement and all nested statements.
    pub fn walk(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::Skip(_) | Stmt::Assign { .. } | Stmt::Wait { .. } | Stmt::Signal { .. } => {}
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.walk(f);
                if let Some(e) = else_branch {
                    e.walk(f);
                }
            }
            Stmt::While { body, .. } => body.walk(f),
            Stmt::Seq { stmts, .. } => stmts.iter().for_each(|s| s.walk(f)),
            Stmt::Cobegin { branches, .. } => branches.iter().for_each(|s| s.walk(f)),
        }
    }

    /// Number of statement nodes (the paper's "length of the program").
    pub fn statement_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Calls `f` on every variable *potentially modified* by the statement:
    /// assignment targets and the semaphores of `wait`/`signal` (the paper
    /// treats semaphore operations as modifications of the semaphore).
    pub fn for_each_modified(&self, f: &mut impl FnMut(VarId)) {
        self.walk(&mut |s| match s {
            Stmt::Assign { var, .. } => f(*var),
            Stmt::Wait { sem, .. } | Stmt::Signal { sem, .. } => f(*sem),
            _ => {}
        });
    }

    /// The distinct variables potentially modified, in first-occurrence
    /// order.
    pub fn modified_vars(&self) -> Vec<VarId> {
        let mut seen = Vec::new();
        self.for_each_modified(&mut |v| {
            if !seen.contains(&v) {
                seen.push(v);
            }
        });
        seen
    }

    /// Calls `f` on every variable *read* by the statement (guards and
    /// right-hand sides).
    pub fn for_each_read(&self, f: &mut impl FnMut(VarId)) {
        self.walk(&mut |s| match s {
            Stmt::Assign { expr, .. } => expr.for_each_var(f),
            Stmt::If { cond, .. } | Stmt::While { cond, .. } => cond.for_each_var(f),
            _ => {}
        });
    }

    /// `true` iff the statement contains any `cobegin`, `wait` or `signal`
    /// (i.e. uses the concurrent fragment of the language).
    pub fn is_concurrent(&self) -> bool {
        let mut found = false;
        self.walk(&mut |s| {
            if matches!(
                s,
                Stmt::Cobegin { .. } | Stmt::Wait { .. } | Stmt::Signal { .. }
            ) {
                found = true;
            }
        });
        found
    }
}

/// A complete program: declarations plus a body statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    /// Declared names.
    pub symbols: SymbolTable,
    /// The program body.
    pub body: Stmt,
}

impl Program {
    /// Creates a program from parts.
    pub fn new(symbols: SymbolTable, body: Stmt) -> Self {
        Program { symbols, body }
    }

    /// Number of statement nodes in the body.
    pub fn statement_count(&self) -> usize {
        self.body.statement_count()
    }

    /// Looks up a variable id by name — convenient in tests and examples.
    ///
    /// # Panics
    ///
    /// Panics when `name` is not declared.
    pub fn var(&self, name: &str) -> VarId {
        self.symbols
            .lookup(name)
            .unwrap_or_else(|| panic!("no variable named `{name}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Span {
        Span::DUMMY
    }

    #[test]
    fn symbol_table_declares_and_looks_up() {
        let mut t = SymbolTable::new();
        let x = t.declare("x", VarKind::Data, 0, sp()).unwrap();
        let s = t.declare("s", VarKind::Semaphore, 1, sp()).unwrap();
        assert_eq!(t.lookup("x"), Some(x));
        assert_eq!(t.lookup("s"), Some(s));
        assert_eq!(t.lookup("nope"), None);
        assert_eq!(t.kind(x), VarKind::Data);
        assert_eq!(t.kind(s), VarKind::Semaphore);
        assert_eq!(t.info(s).init, 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn duplicate_declaration_is_an_error() {
        let mut t = SymbolTable::new();
        t.declare("x", VarKind::Data, 0, sp()).unwrap();
        let err = t.declare("x", VarKind::Semaphore, 0, sp()).unwrap_err();
        assert_eq!(err.code, ErrorCode::DuplicateDeclaration);
        assert_eq!(err.notes.len(), 1);
    }

    #[test]
    fn data_vars_and_semaphores_partition() {
        let mut t = SymbolTable::new();
        let x = t.declare("x", VarKind::Data, 0, sp()).unwrap();
        let s = t.declare("s", VarKind::Semaphore, 0, sp()).unwrap();
        let y = t.declare("y", VarKind::Data, 0, sp()).unwrap();
        assert_eq!(t.data_vars(), vec![x, y]);
        assert_eq!(t.semaphores(), vec![s]);
    }

    #[test]
    fn expr_vars_dedup_in_order() {
        let x = VarId(0);
        let y = VarId(1);
        // x + (y * x)
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Var(x, sp())),
            rhs: Box::new(Expr::Binary {
                op: BinOp::Mul,
                lhs: Box::new(Expr::Var(y, sp())),
                rhs: Box::new(Expr::Var(x, sp())),
                span: sp(),
            }),
            span: sp(),
        };
        assert_eq!(e.vars(), vec![x, y]);
        assert_eq!(e.node_count(), 5);
    }

    #[test]
    fn modified_vars_of_nested_statement() {
        let x = VarId(0);
        let s = VarId(1);
        let stmt = Stmt::Seq {
            stmts: vec![
                Stmt::Assign {
                    var: x,
                    expr: Expr::Const(1, sp()),
                    span: sp(),
                },
                Stmt::Wait { sem: s, span: sp() },
                Stmt::Assign {
                    var: x,
                    expr: Expr::Const(2, sp()),
                    span: sp(),
                },
            ],
            span: sp(),
        };
        assert_eq!(stmt.modified_vars(), vec![x, s]);
        assert_eq!(stmt.statement_count(), 4);
        assert!(stmt.is_concurrent());
    }

    #[test]
    fn skip_modifies_nothing() {
        let s = Stmt::Skip(sp());
        assert!(s.modified_vars().is_empty());
        assert_eq!(s.statement_count(), 1);
        assert!(!s.is_concurrent());
    }

    #[test]
    fn reads_come_from_guards_and_rhs() {
        let x = VarId(0);
        let y = VarId(1);
        let stmt = Stmt::If {
            cond: Expr::Var(x, sp()),
            then_branch: Box::new(Stmt::Assign {
                var: y,
                expr: Expr::Var(y, sp()),
                span: sp(),
            }),
            else_branch: None,
            span: sp(),
        };
        let mut reads = Vec::new();
        stmt.for_each_read(&mut |v| reads.push(v));
        assert_eq!(reads, vec![x, y]);
    }

    #[test]
    fn precedence_orders_operators() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }
}
