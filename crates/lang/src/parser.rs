//! Recursive-descent parser: token stream → [`Program`].
//!
//! Grammar (paper §2.0 syntax with conventional declaration headers):
//!
//! ```text
//! program   := { "var" declgroup { ";" declgroup } ";" } stmt EOF
//! declgroup := ident { "," ident } ":" type
//! type      := "integer" | "boolean"
//!            | "semaphore" [ "initially" "(" int ")" ]
//! stmt      := ident ":=" expr
//!            | "if" expr "then" stmt [ "else" stmt ]
//!            | "while" expr "do" stmt
//!            | "begin" stmt { ";" stmt } [ ";" ] "end"
//!            | "cobegin" stmt { "||" stmt } "coend"
//!            | "wait" "(" ident ")"
//!            | "signal" "(" ident ")"
//!            | "skip"
//! expr      := or-chain of and-chains of comparisons of sums of products
//!              of unary/atomic expressions
//! ```
//!
//! `#`, `<>` and `!=` all denote "not equal" (the paper writes `#`).
//! Name resolution happens during parsing: every identifier must be
//! declared, assignments must target data variables, and `wait`/`signal`
//! must name semaphores.

use crate::ast::{BinOp, Expr, Program, Stmt, SymbolTable, UnOp, VarId, VarKind};
use crate::diag::{Diagnostic, ErrorCode};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a complete program from source text.
///
/// # Examples
///
/// ```
/// use secflow_lang::parse;
///
/// let p = parse(
///     "var x, y : integer; s : semaphore initially(1);
///      cobegin
///        begin wait(s); x := 1; signal(s) end
///      ||
///        begin wait(s); y := x; signal(s) end
///      coend",
/// )
/// .unwrap();
/// assert_eq!(p.symbols.len(), 3);
/// ```
pub fn parse(source: &str) -> Result<Program, Diagnostic> {
    let tokens = lex(source)?;
    Parser::new(tokens).program()
}

/// Parses a single expression against an existing symbol table.
///
/// Useful for tests and the CLI's policy files.
pub fn parse_expr(source: &str, symbols: &SymbolTable) -> Result<Expr, Diagnostic> {
    let tokens = lex(source)?;
    let mut p = Parser::new(tokens);
    p.symbols = symbols.clone();
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Maximum statement/expression nesting the parser accepts. Real
/// programs nest a handful of levels; the bound exists so adversarial
/// inputs (e.g. 50k open parentheses) produce a diagnostic instead of
/// exhausting the stack.
const MAX_NESTING: u32 = 300;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    symbols: SymbolTable,
    depth: u32,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            symbols: SymbolTable::new(),
            depth: 0,
        }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, Diagnostic> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            let found = self.peek();
            Err(Diagnostic::error(
                ErrorCode::UnexpectedToken,
                format!("expected `{kind}`, found {}", found.kind.describe()),
                found.span,
            ))
        }
    }

    fn expect_eof(&mut self) -> Result<(), Diagnostic> {
        if self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            let found = self.peek();
            Err(Diagnostic::error(
                ErrorCode::UnexpectedToken,
                format!("expected end of input, found {}", found.kind.describe()),
                found.span,
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), Diagnostic> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                let span = self.peek().span;
                self.bump();
                Ok((name, span))
            }
            other => Err(Diagnostic::error(
                ErrorCode::UnexpectedToken,
                format!("expected an identifier, found {}", other.describe()),
                self.peek().span,
            )),
        }
    }

    // ---- declarations -------------------------------------------------

    fn program(mut self) -> Result<Program, Diagnostic> {
        while self.at(&TokenKind::Var) {
            self.decl_section()?;
        }
        let body = self.stmt()?;
        self.expect_eof()?;
        Ok(Program::new(self.symbols, body))
    }

    /// `var` declgroup { `;` declgroup } `;`
    ///
    /// The final `;` is required (it separates declarations from the body).
    fn decl_section(&mut self) -> Result<(), Diagnostic> {
        self.expect(TokenKind::Var)?;
        loop {
            self.decl_group()?;
            self.expect(TokenKind::Semi)?;
            // Another group follows only when we see `ident ,` or `ident :`;
            // a lone `ident :=` is the start of the body.
            let next_is_group = matches!(self.peek().kind, TokenKind::Ident(_))
                && matches!(
                    self.tokens.get(self.pos + 1).map(|t| &t.kind),
                    Some(TokenKind::Comma) | Some(TokenKind::Colon)
                );
            if !next_is_group {
                break;
            }
        }
        Ok(())
    }

    /// ident { `,` ident } `:` type
    fn decl_group(&mut self) -> Result<(), Diagnostic> {
        let mut names = vec![self.expect_ident()?];
        while self.eat(&TokenKind::Comma) {
            names.push(self.expect_ident()?);
        }
        self.expect(TokenKind::Colon)?;
        let (kind, init) = match self.peek().kind {
            TokenKind::Integer | TokenKind::Boolean => {
                self.bump();
                (VarKind::Data, 0)
            }
            TokenKind::Semaphore => {
                self.bump();
                let mut init = 0i64;
                if self.eat(&TokenKind::Initially) {
                    self.expect(TokenKind::LParen)?;
                    let t = self.bump();
                    init = match t.kind {
                        TokenKind::Int(n) if n >= 0 => n,
                        TokenKind::Int(n) => {
                            return Err(Diagnostic::error(
                                ErrorCode::BadSemaphoreInit,
                                format!("semaphore initial value must be non-negative, got {n}"),
                                t.span,
                            ));
                        }
                        other => {
                            return Err(Diagnostic::error(
                                ErrorCode::UnexpectedToken,
                                format!("expected an integer, found {}", other.describe()),
                                t.span,
                            ));
                        }
                    };
                    self.expect(TokenKind::RParen)?;
                }
                (VarKind::Semaphore, init)
            }
            ref other => {
                return Err(Diagnostic::error(
                    ErrorCode::UnexpectedToken,
                    format!(
                        "expected `integer`, `boolean` or `semaphore`, found {}",
                        other.describe()
                    ),
                    self.peek().span,
                ));
            }
        };
        for (name, span) in names {
            self.symbols.declare(&name, kind, init, span)?;
        }
        Ok(())
    }

    // ---- statements ---------------------------------------------------

    fn enter(&mut self) -> Result<DepthGuard, Diagnostic> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            return Err(Diagnostic::error(
                ErrorCode::MalformedStatement,
                format!("nesting deeper than {MAX_NESTING} levels"),
                self.peek().span,
            ));
        }
        Ok(DepthGuard)
    }

    fn leave(&mut self, _guard: DepthGuard) {
        self.depth -= 1;
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let guard = self.enter()?;
        let result = self.stmt_inner();
        self.leave(guard);
        result
    }

    fn stmt_inner(&mut self) -> Result<Stmt, Diagnostic> {
        match self.peek().kind.clone() {
            TokenKind::Skip => {
                let t = self.bump();
                Ok(Stmt::Skip(t.span))
            }
            TokenKind::Ident(name) => self.assign_stmt(&name),
            TokenKind::If => self.if_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::Begin => self.begin_stmt(),
            TokenKind::Cobegin => self.cobegin_stmt(),
            TokenKind::Wait => self.sem_stmt(true),
            TokenKind::Signal => self.sem_stmt(false),
            other => Err(Diagnostic::error(
                ErrorCode::UnexpectedToken,
                format!("expected a statement, found {}", other.describe()),
                self.peek().span,
            )),
        }
    }

    fn resolve(&self, name: &str, span: Span) -> Result<VarId, Diagnostic> {
        self.symbols.lookup(name).ok_or_else(|| {
            Diagnostic::error(
                ErrorCode::UndeclaredIdentifier,
                format!("`{name}` is not declared"),
                span,
            )
        })
    }

    fn assign_stmt(&mut self, name: &str) -> Result<Stmt, Diagnostic> {
        let (_, name_span) = self.expect_ident()?;
        let var = self.resolve(name, name_span)?;
        if self.symbols.kind(var) != VarKind::Data {
            return Err(Diagnostic::error(
                ErrorCode::KindMismatch,
                format!("cannot assign to semaphore `{name}`; use wait/signal"),
                name_span,
            )
            .with_note("declared here", self.symbols.info(var).decl_span));
        }
        self.expect(TokenKind::Assign)?;
        let expr = self.expr()?;
        let span = name_span.cover(expr.span());
        Ok(Stmt::Assign { var, expr, span })
    }

    fn if_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::If)?.span;
        let cond = self.expr()?;
        self.expect(TokenKind::Then)?;
        let then_branch = Box::new(self.stmt()?);
        let (else_branch, end_span) = if self.eat(&TokenKind::Else) {
            let s = self.stmt()?;
            let sp = s.span();
            (Some(Box::new(s)), sp)
        } else {
            (None, then_branch.span())
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
            span: start.cover(end_span),
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::While)?.span;
        let cond = self.expr()?;
        self.expect(TokenKind::Do)?;
        let body = Box::new(self.stmt()?);
        let span = start.cover(body.span());
        Ok(Stmt::While { cond, body, span })
    }

    fn begin_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::Begin)?.span;
        let mut stmts = vec![self.stmt()?];
        while self.eat(&TokenKind::Semi) {
            if self.at(&TokenKind::End) {
                break; // tolerate a trailing semicolon
            }
            stmts.push(self.stmt()?);
        }
        let end = self.expect(TokenKind::End)?.span;
        // Normalization: `begin S end` is just `S`. This keeps the
        // pretty-printer free to insert disambiguating begin/end pairs
        // (e.g. around a then-branch ending in an open `if`) without
        // changing the parsed structure.
        if stmts.len() == 1 {
            return Ok(stmts.pop().expect("non-empty"));
        }
        Ok(Stmt::Seq {
            stmts,
            span: start.cover(end),
        })
    }

    fn cobegin_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::Cobegin)?.span;
        let mut branches = vec![self.stmt()?];
        while self.eat(&TokenKind::Parallel) {
            branches.push(self.stmt()?);
        }
        let end = self.expect(TokenKind::Coend)?.span;
        let span = start.cover(end);
        if branches.len() < 2 {
            return Err(Diagnostic::error(
                ErrorCode::MalformedStatement,
                "`cobegin` needs at least two processes separated by `||`",
                span,
            ));
        }
        Ok(Stmt::Cobegin { branches, span })
    }

    fn sem_stmt(&mut self, is_wait: bool) -> Result<Stmt, Diagnostic> {
        let kw = if is_wait {
            TokenKind::Wait
        } else {
            TokenKind::Signal
        };
        let start = self.expect(kw)?.span;
        self.expect(TokenKind::LParen)?;
        let (name, name_span) = self.expect_ident()?;
        let sem = self.resolve(&name, name_span)?;
        if self.symbols.kind(sem) != VarKind::Semaphore {
            return Err(Diagnostic::error(
                ErrorCode::KindMismatch,
                format!("`{name}` is not a semaphore"),
                name_span,
            )
            .with_note("declared here", self.symbols.info(sem).decl_span));
        }
        let end = self.expect(TokenKind::RParen)?.span;
        let span = start.cover(end);
        Ok(if is_wait {
            Stmt::Wait { sem, span }
        } else {
            Stmt::Signal { sem, span }
        })
    }

    // ---- expressions --------------------------------------------------

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        let guard = self.enter()?;
        let result = self.or_expr();
        self.leave(guard);
        result
    }

    fn or_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.and_expr()?;
        while self.at(&TokenKind::Or) {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.cmp_expr()?;
        while self.at(&TokenKind::And) {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, Diagnostic> {
        let lhs = self.add_expr()?;
        let op = match self.peek().kind {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(binary(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, Diagnostic> {
        match self.peek().kind {
            TokenKind::Minus => {
                let start = self.bump().span;
                let arg = self.unary_expr()?;
                let span = start.cover(arg.span());
                // Fold negated literals so `-3` is a constant, exactly as
                // the pretty-printer emits it.
                if let Expr::Const(n, _) = arg {
                    return Ok(Expr::Const(n.wrapping_neg(), span));
                }
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    arg: Box::new(arg),
                    span,
                })
            }
            TokenKind::Not => {
                let start = self.bump().span;
                let arg = self.unary_expr()?;
                let span = start.cover(arg.span());
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    arg: Box::new(arg),
                    span,
                })
            }
            _ => self.atom_expr(),
        }
    }

    fn atom_expr(&mut self) -> Result<Expr, Diagnostic> {
        match self.peek().kind.clone() {
            TokenKind::Int(n) => {
                let t = self.bump();
                Ok(Expr::Const(n, t.span))
            }
            TokenKind::True => {
                let t = self.bump();
                Ok(Expr::Const(1, t.span))
            }
            TokenKind::False => {
                let t = self.bump();
                Ok(Expr::Const(0, t.span))
            }
            TokenKind::Ident(name) => {
                let (_, span) = self.expect_ident()?;
                let var = self.resolve(&name, span)?;
                if self.symbols.kind(var) != VarKind::Data {
                    return Err(Diagnostic::error(
                        ErrorCode::KindMismatch,
                        format!("semaphore `{name}` cannot be read in an expression"),
                        span,
                    )
                    .with_note("declared here", self.symbols.info(var).decl_span));
                }
                Ok(Expr::Var(var, span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?; // re-enters the depth guard
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(Diagnostic::error(
                ErrorCode::UnexpectedToken,
                format!("expected an expression, found {}", other.describe()),
                self.peek().span,
            )),
        }
    }
}

/// Token proving `enter` succeeded; consumed by `leave`.
struct DepthGuard;

fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    let span = lhs.span().cover(rhs.span());
    Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
        span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        match parse(src) {
            Ok(p) => p,
            Err(e) => panic!("parse failed:\n{}", e.render(src)),
        }
    }

    #[test]
    fn parses_simple_assignment() {
        let p = parse_ok("var x : integer; x := 1 + 2 * 3");
        match &p.body {
            Stmt::Assign { expr, .. } => {
                // 1 + (2 * 3), precedence respected.
                match expr {
                    Expr::Binary {
                        op: BinOp::Add,
                        rhs,
                        ..
                    } => {
                        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
                    }
                    other => panic!("expected Add at top, got {other:?}"),
                }
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_then_else() {
        let p = parse_ok("var x, y : integer; if x = 0 then y := 1 else y := 2");
        assert!(matches!(
            p.body,
            Stmt::If {
                else_branch: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn parses_if_without_else() {
        let p = parse_ok("var x, y : integer; if x # 0 then y := 1");
        assert!(matches!(
            p.body,
            Stmt::If {
                else_branch: None,
                ..
            }
        ));
    }

    #[test]
    fn parses_while() {
        let p = parse_ok("var x : integer; while x < 10 do x := x + 1");
        assert!(matches!(p.body, Stmt::While { .. }));
    }

    #[test]
    fn parses_begin_end_with_trailing_semi() {
        let p = parse_ok("var x : integer; begin x := 1; x := 2; end");
        match p.body {
            Stmt::Seq { ref stmts, .. } => assert_eq!(stmts.len(), 2),
            ref other => panic!("expected seq, got {other:?}"),
        }
    }

    #[test]
    fn parses_cobegin() {
        let p = parse_ok("var x, y : integer; cobegin x := 1 || y := 2 || skip coend");
        match p.body {
            Stmt::Cobegin { ref branches, .. } => assert_eq!(branches.len(), 3),
            ref other => panic!("expected cobegin, got {other:?}"),
        }
    }

    #[test]
    fn cobegin_with_one_branch_is_rejected() {
        let err = parse("var x : integer; cobegin x := 1 coend").unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedStatement);
    }

    #[test]
    fn parses_wait_and_signal() {
        let p = parse_ok("var s : semaphore initially(2); begin wait(s); signal(s) end");
        let s = p.var("s");
        assert_eq!(p.symbols.info(s).init, 2);
        match p.body {
            Stmt::Seq { ref stmts, .. } => {
                assert!(matches!(stmts[0], Stmt::Wait { .. }));
                assert!(matches!(stmts[1], Stmt::Signal { .. }));
            }
            ref other => panic!("expected seq, got {other:?}"),
        }
    }

    #[test]
    fn undeclared_variable_is_an_error() {
        let err = parse("x := 1").unwrap_err();
        assert_eq!(err.code, ErrorCode::UndeclaredIdentifier);
    }

    #[test]
    fn assignment_to_semaphore_is_rejected() {
        let err = parse("var s : semaphore; s := 1").unwrap_err();
        assert_eq!(err.code, ErrorCode::KindMismatch);
    }

    #[test]
    fn wait_on_data_variable_is_rejected() {
        let err = parse("var x : integer; wait(x)").unwrap_err();
        assert_eq!(err.code, ErrorCode::KindMismatch);
    }

    #[test]
    fn semaphore_read_in_expression_is_rejected() {
        let err = parse("var s : semaphore; x : integer; x := s").unwrap_err();
        assert_eq!(err.code, ErrorCode::KindMismatch);
    }

    #[test]
    fn negative_semaphore_init_is_rejected() {
        let err = parse("var s : semaphore initially(-1); skip").unwrap_err();
        // `-1` lexes as Minus Int(1), so this trips the integer expectation.
        assert_eq!(err.code, ErrorCode::UnexpectedToken);
    }

    #[test]
    fn multiple_decl_groups_in_one_section() {
        let p = parse_ok("var x, y : integer; a, b : semaphore; skip");
        assert_eq!(p.symbols.len(), 4);
        assert_eq!(p.symbols.data_vars().len(), 2);
        assert_eq!(p.symbols.semaphores().len(), 2);
    }

    #[test]
    fn multiple_var_sections() {
        let p = parse_ok("var x : integer; var y : integer; skip");
        assert_eq!(p.symbols.len(), 2);
    }

    #[test]
    fn duplicate_declaration_reported() {
        let err = parse("var x : integer; x : semaphore; skip").unwrap_err();
        assert_eq!(err.code, ErrorCode::DuplicateDeclaration);
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let err = parse("var x : integer; x := 1 x := 2").unwrap_err();
        assert_eq!(err.code, ErrorCode::UnexpectedToken);
    }

    #[test]
    fn parses_boolean_literals_as_integers() {
        let p = parse_ok("var b : boolean; b := true");
        match p.body {
            Stmt::Assign { ref expr, .. } => assert_eq!(*expr, Expr::Const(1, expr.span())),
            ref other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn parses_parenthesized_and_logical_operators() {
        let p = parse_ok("var x, y : integer; if (x = 0 or y = 0) and not (x = y) then skip");
        assert!(matches!(p.body, Stmt::If { .. }));
    }

    #[test]
    fn parses_unary_minus() {
        let p = parse_ok("var x : integer; x := -x + -3");
        assert!(matches!(p.body, Stmt::Assign { .. }));
    }

    #[test]
    fn parses_the_fig3_program() {
        let src = r#"
            var x, y, m : integer;
                modify, modified, read, done : semaphore initially(0);
            cobegin
                begin
                    m := 0;
                    if x # 0 then begin signal(modify); wait(modified) end;
                    signal(read); wait(done);
                    if x = 0 then begin signal(modify); wait(modified) end;
                    wait(done)
                end
            ||
                begin wait(modify); m := 1; signal(modified) end
            ||
                begin wait(read); y := m; signal(done); signal(done) end
            coend
        "#;
        let p = parse_ok(src);
        assert_eq!(p.symbols.len(), 7);
        match p.body {
            Stmt::Cobegin { ref branches, .. } => assert_eq!(branches.len(), 3),
            ref other => panic!("expected cobegin, got {other:?}"),
        }
    }

    #[test]
    fn parse_expr_standalone() {
        let mut t = SymbolTable::new();
        t.declare("x", VarKind::Data, 0, Span::DUMMY).unwrap();
        let e = parse_expr("x + 1", &t).unwrap();
        assert_eq!(e.vars().len(), 1);
        assert!(parse_expr("x +", &t).is_err());
    }

    #[test]
    fn deeply_nested_statements_parse() {
        let mut src = String::from("var x : integer; ");
        for _ in 0..64 {
            src.push_str("if x = 0 then ");
        }
        src.push_str("x := 1");
        let p = parse_ok(&src);
        assert_eq!(p.statement_count(), 65);
    }
}
