//! Structural program metrics used by the benchmark harness.
//!
//! The paper's §6 claim is that CFM "can be computed in time proportional
//! to the length of the program, once the program has been parsed". The
//! benchmark harness needs a well-defined notion of *length*; this module
//! provides it, along with companion metrics used to characterize workload
//! families.

use crate::ast::{Program, Stmt};

/// Structural metrics of a program.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Metrics {
    /// Statement nodes (the paper's "length").
    pub statements: usize,
    /// Expression nodes (constants, variables, operators).
    pub expr_nodes: usize,
    /// Maximum statement nesting depth.
    pub max_depth: usize,
    /// Number of `cobegin` statements.
    pub cobegins: usize,
    /// Maximum number of processes in any single `cobegin`.
    pub max_width: usize,
    /// Number of `wait` statements.
    pub waits: usize,
    /// Number of `signal` statements.
    pub signals: usize,
    /// Number of `while` statements.
    pub loops: usize,
    /// Number of `if` statements.
    pub branches: usize,
    /// Number of assignments.
    pub assignments: usize,
    /// Declared names (data variables + semaphores).
    pub names: usize,
}

impl Metrics {
    /// Total AST node count: statements plus expression nodes.
    pub fn total_nodes(&self) -> usize {
        self.statements + self.expr_nodes
    }

    /// `true` iff the program uses the concurrent fragment.
    pub fn is_concurrent(&self) -> bool {
        self.cobegins > 0 || self.waits > 0 || self.signals > 0
    }
}

/// Computes [`Metrics`] for a program.
///
/// # Examples
///
/// ```
/// use secflow_lang::{metrics::measure, parse};
///
/// let p = parse("var x : integer; while x < 3 do x := x + 1").unwrap();
/// let m = measure(&p);
/// assert_eq!(m.statements, 2);
/// assert_eq!(m.loops, 1);
/// assert_eq!(m.assignments, 1);
/// assert!(!m.is_concurrent());
/// ```
pub fn measure(program: &Program) -> Metrics {
    let mut m = Metrics {
        names: program.symbols.len(),
        ..Metrics::default()
    };
    visit(&program.body, 1, &mut m);
    m
}

fn visit(stmt: &Stmt, depth: usize, m: &mut Metrics) {
    m.statements += 1;
    m.max_depth = m.max_depth.max(depth);
    match stmt {
        Stmt::Skip(_) => {}
        Stmt::Assign { expr, .. } => {
            m.assignments += 1;
            m.expr_nodes += expr.node_count();
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            m.branches += 1;
            m.expr_nodes += cond.node_count();
            visit(then_branch, depth + 1, m);
            if let Some(e) = else_branch {
                visit(e, depth + 1, m);
            }
        }
        Stmt::While { cond, body, .. } => {
            m.loops += 1;
            m.expr_nodes += cond.node_count();
            visit(body, depth + 1, m);
        }
        Stmt::Seq { stmts, .. } => {
            for s in stmts {
                visit(s, depth + 1, m);
            }
        }
        Stmt::Cobegin { branches, .. } => {
            m.cobegins += 1;
            m.max_width = m.max_width.max(branches.len());
            for s in branches {
                visit(s, depth + 1, m);
            }
        }
        Stmt::Wait { .. } => m.waits += 1,
        Stmt::Signal { .. } => m.signals += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn measures_sequential_program() {
        let p =
            parse("var x, y : integer; begin x := 1; if x = 0 then y := x else skip end").unwrap();
        let m = measure(&p);
        assert_eq!(m.statements, 5); // seq, assign, if, assign, skip
        assert_eq!(m.branches, 1);
        assert_eq!(m.assignments, 2);
        assert_eq!(m.names, 2);
        assert_eq!(m.max_depth, 3);
        assert!(!m.is_concurrent());
    }

    #[test]
    fn measures_concurrency() {
        let p = parse(
            "var s : semaphore; x, y : integer;
             cobegin begin wait(s); x := 1 end || begin y := 2; signal(s) end || skip coend",
        )
        .unwrap();
        let m = measure(&p);
        assert_eq!(m.cobegins, 1);
        assert_eq!(m.max_width, 3);
        assert_eq!(m.waits, 1);
        assert_eq!(m.signals, 1);
        assert!(m.is_concurrent());
    }

    #[test]
    fn expression_nodes_counted() {
        let p = parse("var x : integer; x := (x + 1) * (x - 2)").unwrap();
        let m = measure(&p);
        // (x+1)*(x-2): mul, add, sub, x, 1, x, 2 = 7 nodes.
        assert_eq!(m.expr_nodes, 7);
        assert_eq!(m.total_nodes(), 8);
    }

    #[test]
    fn statement_count_matches_ast_helper() {
        let p = parse("var x : integer; begin x := 1; x := 2; begin x := 3; skip end end").unwrap();
        assert_eq!(measure(&p).statements, p.statement_count());
    }
}
