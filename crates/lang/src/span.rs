//! Byte-offset source spans and line/column resolution.

use std::fmt;

/// A half-open byte range `[start, end)` into a source text.
///
/// Spans are attached to every token, expression and statement so that
/// certification reports and runtime errors can point at the offending
/// source. AST nodes built programmatically (without source text) carry
/// [`Span::DUMMY`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// The span used for synthesized nodes with no source location.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Creates a span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// A dummy operand is absorbed by the other span.
    pub fn cover(self, other: Span) -> Span {
        if self == Span::DUMMY {
            other
        } else if other == Span::DUMMY {
            self
        } else {
            Span::new(self.start.min(other.start), self.end.max(other.end))
        }
    }

    /// Number of bytes covered.
    pub fn len(self) -> u32 {
        self.end.saturating_sub(self.start)
    }

    /// `true` iff the span covers no bytes.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Resolves byte offsets to 1-based line and column numbers.
///
/// # Examples
///
/// ```
/// use secflow_lang::span::LineIndex;
///
/// let idx = LineIndex::new("ab\ncd");
/// assert_eq!(idx.line_col(0), (1, 1));
/// assert_eq!(idx.line_col(3), (2, 1));
/// assert_eq!(idx.line_col(4), (2, 2));
/// ```
#[derive(Clone, Debug)]
pub struct LineIndex {
    line_starts: Vec<u32>,
    len: u32,
}

impl LineIndex {
    /// Builds the index for `text`.
    pub fn new(text: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineIndex {
            line_starts,
            len: text.len() as u32,
        }
    }

    /// 1-based `(line, column)` of the byte at `offset` (clamped to the
    /// text length).
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let offset = offset.min(self.len);
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line as u32 + 1, offset - self.line_starts[line] + 1)
    }

    /// The byte range of 1-based line `line`, without its newline, or
    /// `None` if the line does not exist.
    pub fn line_range(&self, line: u32) -> Option<(u32, u32)> {
        let i = line.checked_sub(1)? as usize;
        let start = *self.line_starts.get(i)?;
        let end = self
            .line_starts
            .get(i + 1)
            .map(|next| next - 1)
            .unwrap_or(self.len);
        Some((start, end))
    }

    /// Number of lines in the text (at least 1, even for empty text).
    pub fn line_count(&self) -> u32 {
        self.line_starts.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_merges_ranges() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.cover(b), Span::new(3, 12));
        assert_eq!(b.cover(a), Span::new(3, 12));
    }

    #[test]
    fn cover_absorbs_dummy() {
        let a = Span::new(3, 7);
        assert_eq!(a.cover(Span::DUMMY), a);
        assert_eq!(Span::DUMMY.cover(a), a);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(Span::new(2, 6).len(), 4);
        assert!(Span::new(4, 4).is_empty());
        assert!(!Span::new(4, 5).is_empty());
    }

    #[test]
    fn line_index_single_line() {
        let idx = LineIndex::new("hello");
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(4), (1, 5));
        assert_eq!(idx.line_count(), 1);
    }

    #[test]
    fn line_index_multi_line() {
        let idx = LineIndex::new("a\nbb\nccc\n");
        assert_eq!(idx.line_col(2), (2, 1));
        assert_eq!(idx.line_col(3), (2, 2));
        assert_eq!(idx.line_col(5), (3, 1));
        assert_eq!(idx.line_count(), 4); // trailing newline opens line 4
        assert_eq!(idx.line_range(2), Some((2, 4)));
        assert_eq!(idx.line_range(3), Some((5, 8)));
        assert_eq!(idx.line_range(99), None);
    }

    #[test]
    fn line_index_empty_text() {
        let idx = LineIndex::new("");
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_count(), 1);
    }

    #[test]
    fn offsets_past_end_are_clamped() {
        let idx = LineIndex::new("ab");
        assert_eq!(idx.line_col(100), (1, 3));
    }

    #[test]
    fn display_renders_range() {
        assert_eq!(Span::new(1, 5).to_string(), "1..5");
    }
}
