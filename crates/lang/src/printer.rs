//! Pretty-printer: AST → concrete syntax that re-parses to the same AST.

use std::fmt::Write as _;

use crate::ast::{Expr, Program, Stmt, SymbolTable};

/// Renders a whole program, declarations first.
///
/// The output is valid input for [`crate::parse`], and round-trips: parsing
/// the output yields a structurally identical program (modulo spans).
///
/// # Examples
///
/// ```
/// use secflow_lang::{parse, print_program};
///
/// let src = "var x : integer; while x < 3 do x := x + 1";
/// let p = parse(src).unwrap();
/// let printed = print_program(&p);
/// let q = parse(&printed).unwrap();
/// assert_eq!(p.body.statement_count(), q.body.statement_count());
/// ```
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    print_decls(&mut out, &program.symbols);
    print_stmt_at(&mut out, &program.body, &program.symbols, 0);
    out.push('\n');
    out
}

/// Renders a statement against a symbol table.
pub fn print_stmt(stmt: &Stmt, symbols: &SymbolTable) -> String {
    let mut out = String::new();
    print_stmt_at(&mut out, stmt, symbols, 0);
    out
}

/// Renders an expression against a symbol table.
pub fn print_expr(expr: &Expr, symbols: &SymbolTable) -> String {
    let mut out = String::new();
    print_expr_prec(&mut out, expr, symbols, 0);
    out
}

fn print_decls(out: &mut String, symbols: &SymbolTable) {
    let data = symbols.data_vars();
    let sems = symbols.semaphores();
    if data.is_empty() && sems.is_empty() {
        return;
    }
    out.push_str("var ");
    if !data.is_empty() {
        let names: Vec<&str> = data.iter().map(|&v| symbols.name(v)).collect();
        let _ = write!(out, "{} : integer;", names.join(", "));
        if !sems.is_empty() {
            out.push_str("\n    ");
        }
    }
    // Group semaphores by initial value so `initially` clauses stay exact.
    let mut remaining: Vec<_> = sems.clone();
    while !remaining.is_empty() {
        let init = symbols.info(remaining[0]).init;
        let (group, rest): (Vec<_>, Vec<_>) = remaining
            .into_iter()
            .partition(|&v| symbols.info(v).init == init);
        let names: Vec<&str> = group.iter().map(|&v| symbols.name(v)).collect();
        let _ = write!(out, "{} : semaphore initially({init});", names.join(", "));
        remaining = rest;
        if !remaining.is_empty() {
            out.push_str("\n    ");
        }
    }
    out.push('\n');
}

/// `true` iff the statement's concrete syntax ends in a position that
/// would bind a following `else` (an else-less `if`, or a construct whose
/// trailing sub-statement does).
fn captures_following_else(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::If {
            else_branch: None, ..
        } => true,
        Stmt::If {
            else_branch: Some(e),
            ..
        } => captures_following_else(e),
        Stmt::While { body, .. } => captures_following_else(body),
        // begin/end and cobegin/coend close themselves.
        _ => false,
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_stmt_at(out: &mut String, stmt: &Stmt, symbols: &SymbolTable, depth: usize) {
    match stmt {
        Stmt::Skip(_) => {
            indent(out, depth);
            out.push_str("skip");
        }
        Stmt::Assign { var, expr, .. } => {
            indent(out, depth);
            let _ = write!(out, "{} := ", symbols.name(*var));
            print_expr_prec(out, expr, symbols, 0);
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            indent(out, depth);
            out.push_str("if ");
            print_expr_prec(out, cond, symbols, 0);
            out.push_str(" then\n");
            // Dangling-else protection: a then-branch whose trailing
            // statement position is open (an `if` or `while`) would
            // capture our `else` on re-parse, so brace it. The parser
            // collapses single-statement begin/end, keeping the round
            // trip structure-exact.
            if else_branch.is_some() && captures_following_else(then_branch) {
                indent(out, depth + 1);
                out.push_str("begin\n");
                print_stmt_at(out, then_branch, symbols, depth + 2);
                out.push('\n');
                indent(out, depth + 1);
                out.push_str("end");
            } else {
                print_stmt_at(out, then_branch, symbols, depth + 1);
            }
            if let Some(e) = else_branch {
                out.push('\n');
                indent(out, depth);
                out.push_str("else\n");
                print_stmt_at(out, e, symbols, depth + 1);
            }
        }
        Stmt::While { cond, body, .. } => {
            indent(out, depth);
            out.push_str("while ");
            print_expr_prec(out, cond, symbols, 0);
            out.push_str(" do\n");
            print_stmt_at(out, body, symbols, depth + 1);
        }
        Stmt::Seq { stmts, .. } => {
            indent(out, depth);
            out.push_str("begin\n");
            for (i, s) in stmts.iter().enumerate() {
                print_stmt_at(out, s, symbols, depth + 1);
                if i + 1 < stmts.len() {
                    out.push(';');
                }
                out.push('\n');
            }
            indent(out, depth);
            out.push_str("end");
        }
        Stmt::Cobegin { branches, .. } => {
            indent(out, depth);
            out.push_str("cobegin\n");
            for (i, s) in branches.iter().enumerate() {
                print_stmt_at(out, s, symbols, depth + 1);
                out.push('\n');
                if i + 1 < branches.len() {
                    indent(out, depth);
                    out.push_str("||\n");
                }
            }
            indent(out, depth);
            out.push_str("coend");
        }
        Stmt::Wait { sem, .. } => {
            indent(out, depth);
            let _ = write!(out, "wait({})", symbols.name(*sem));
        }
        Stmt::Signal { sem, .. } => {
            indent(out, depth);
            let _ = write!(out, "signal({})", symbols.name(*sem));
        }
    }
}

fn print_expr_prec(out: &mut String, expr: &Expr, symbols: &SymbolTable, min_prec: u8) {
    match expr {
        Expr::Const(n, _) => {
            let _ = write!(out, "{n}");
        }
        Expr::Var(v, _) => {
            out.push_str(symbols.name(*v));
        }
        Expr::Unary { op, arg, .. } => {
            match op {
                crate::ast::UnOp::Neg => out.push('-'),
                crate::ast::UnOp::Not => out.push_str("not "),
            }
            // Unary binds tighter than any binary operator.
            match **arg {
                Expr::Binary { .. } => {
                    out.push('(');
                    print_expr_prec(out, arg, symbols, 0);
                    out.push(')');
                }
                _ => print_expr_prec(out, arg, symbols, u8::MAX),
            }
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            use crate::ast::BinOp::*;
            let prec = op.precedence();
            let need_parens = prec < min_prec;
            if need_parens {
                out.push('(');
            }
            // Comparisons are non-associative in the grammar, so a
            // comparison operand of a comparison must be parenthesized on
            // BOTH sides; left-associative operators only need it on the
            // right.
            let non_assoc = matches!(op, Eq | Ne | Lt | Le | Gt | Ge);
            let lhs_min = if non_assoc { prec + 1 } else { prec };
            print_expr_prec(out, lhs, symbols, lhs_min);
            let _ = write!(out, " {op} ");
            print_expr_prec(out, rhs, symbols, prec + 1);
            if need_parens {
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    /// Strips spans by comparing printed forms, which is the practical
    /// structural-equality check used across the test-suite.
    fn round_trip(src: &str) {
        let p = parse(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
        let printed = print_program(&p);
        let q = parse(&printed).unwrap_or_else(|e| panic!("re-parse failed:\n{printed}\n{e}"));
        let reprinted = print_program(&q);
        assert_eq!(printed, reprinted, "printer is not a fixpoint for:\n{src}");
    }

    #[test]
    fn round_trips_simple_statements() {
        round_trip("var x : integer; x := 1");
        round_trip("var x : integer; skip");
        round_trip("var s : semaphore initially(3); wait(s)");
        round_trip("var s : semaphore; signal(s)");
    }

    #[test]
    fn round_trips_control_flow() {
        round_trip("var x, y : integer; if x = 0 then y := 1 else y := 2");
        round_trip("var x : integer; while x < 10 do x := x + 1");
        round_trip("var x : integer; begin x := 1; x := 2; x := 3 end");
    }

    #[test]
    fn round_trips_concurrency() {
        round_trip("var x, y : integer; cobegin x := 1 || y := 2 coend");
        round_trip(
            "var x : integer; s : semaphore initially(1);
             cobegin begin wait(s); x := 1; signal(s) end || begin wait(s); x := 2; signal(s) end coend",
        );
    }

    #[test]
    fn round_trips_expression_precedence() {
        round_trip("var x, y : integer; x := (x + y) * 2");
        round_trip("var x, y : integer; x := x + y * 2");
        round_trip("var x, y : integer; x := x - (y - 1)");
        round_trip("var x, y : integer; x := x - y - 1");
        round_trip("var x, y : integer; if not (x = y) and (x < 1 or y > 1) then skip");
        round_trip("var x : integer; x := -(x + 1)");
        round_trip("var x : integer; x := -x");
    }

    #[test]
    fn subtraction_parenthesization_is_preserved() {
        // x - (y - 1) must not print as x - y - 1.
        let p = parse("var x, y : integer; x := x - (y - 1)").unwrap();
        let printed = print_program(&p);
        assert!(printed.contains("x - (y - 1)"), "{printed}");
    }

    #[test]
    fn mixed_semaphore_inits_survive() {
        let src = "var a : semaphore initially(0); b : semaphore initially(2); skip";
        let p = parse(src).unwrap();
        let printed = print_program(&p);
        let q = parse(&printed).unwrap();
        assert_eq!(q.symbols.info(q.var("a")).init, 0);
        assert_eq!(q.symbols.info(q.var("b")).init, 2);
    }

    #[test]
    fn expr_printer_standalone() {
        let p = parse("var x, y : integer; x := x * (y + 1)").unwrap();
        match &p.body {
            crate::ast::Stmt::Assign { expr, .. } => {
                assert_eq!(print_expr(expr, &p.symbols), "x * (y + 1)");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn round_trips_fig3() {
        round_trip(
            r#"var x, y, m : integer;
               modify, modified, read, done : semaphore initially(0);
               cobegin
                 begin
                   m := 0;
                   if x # 0 then begin signal(modify); wait(modified) end;
                   signal(read); wait(done);
                   if x = 0 then begin signal(modify); wait(modified) end;
                   wait(done)
                 end
               || begin wait(modify); m := 1; signal(modified) end
               || begin wait(read); y := m; signal(done); signal(done) end
               coend"#,
        );
    }
}
