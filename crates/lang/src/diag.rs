//! Diagnostics: structured errors with source locations and rendering.
//!
//! Two diagnostic types live here:
//!
//! - [`Diagnostic`] is the front-end's error type (lexer/parser), with
//!   `E`-prefixed [`ErrorCode`]s;
//! - [`Diag`] is the *unified* diagnostic emitted by every static
//!   analysis pass in the workspace (`SF`-prefixed codes, a
//!   [`Severity`], optional fix hints). Parse errors convert into it
//!   via `From`, so lint pipelines report everything in one shape.

use std::fmt;

use crate::span::{LineIndex, Span};

/// Stable machine-readable error codes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ErrorCode {
    /// A character the lexer does not recognize.
    UnknownCharacter,
    /// An integer literal that does not fit in `i64`.
    IntegerOverflow,
    /// The parser found a token it did not expect.
    UnexpectedToken,
    /// A name was declared twice.
    DuplicateDeclaration,
    /// A name was used without being declared.
    UndeclaredIdentifier,
    /// A semaphore was used where a data variable is required, or vice
    /// versa.
    KindMismatch,
    /// A `cobegin` with fewer than two processes, an empty `begin`, etc.
    MalformedStatement,
    /// A semaphore initial value outside `0..=i64::MAX`.
    BadSemaphoreInit,
}

impl ErrorCode {
    /// The stable `E`-prefixed code string.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::UnknownCharacter => "E0001",
            ErrorCode::IntegerOverflow => "E0002",
            ErrorCode::UnexpectedToken => "E0101",
            ErrorCode::DuplicateDeclaration => "E0201",
            ErrorCode::UndeclaredIdentifier => "E0202",
            ErrorCode::KindMismatch => "E0203",
            ErrorCode::MalformedStatement => "E0102",
            ErrorCode::BadSemaphoreInit => "E0204",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// A diagnostic: an error (or note) tied to a source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable message.
    pub message: String,
    /// Primary source location.
    pub span: Span,
    /// Secondary notes (e.g. "first declared here").
    pub notes: Vec<(String, Span)>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(code: ErrorCode, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            code,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Attaches a secondary note.
    pub fn with_note(mut self, message: impl Into<String>, span: Span) -> Self {
        self.notes.push((message.into(), span));
        self
    }

    /// Renders the diagnostic against its source text, with a caret line.
    ///
    /// # Examples
    ///
    /// ```
    /// use secflow_lang::diag::{Diagnostic, ErrorCode};
    /// use secflow_lang::span::Span;
    ///
    /// let d = Diagnostic::error(ErrorCode::UnexpectedToken, "expected `;`", Span::new(5, 6));
    /// let rendered = d.render("begin x end");
    /// assert!(rendered.contains("error[E0101]"));
    /// assert!(rendered.contains('^'));
    /// ```
    pub fn render(&self, source: &str) -> String {
        let idx = LineIndex::new(source);
        let mut out = format!("error[{}]: {}\n", self.code, self.message);
        render_snippet(&mut out, source, &idx, self.span);
        for (msg, span) in &self.notes {
            out.push_str(&format!("note: {msg}\n"));
            render_snippet(&mut out, source, &idx, *span);
        }
        out
    }
}

fn render_snippet(out: &mut String, source: &str, idx: &LineIndex, span: Span) {
    let (line, col) = idx.line_col(span.start);
    out.push_str(&format!("  --> line {line}, column {col}\n"));
    if let Some((start, end)) = idx.line_range(line) {
        let text = &source[start as usize..end as usize];
        out.push_str(&format!("   | {text}\n"));
        let caret_len =
            (span.len().max(1) as usize).min(text.len().saturating_sub(col as usize - 1).max(1));
        out.push_str("   | ");
        out.push_str(&" ".repeat(col as usize - 1));
        out.push_str(&"^".repeat(caret_len));
        out.push('\n');
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}]: {} (at {})",
            self.code, self.message, self.span
        )
    }
}

impl std::error::Error for Diagnostic {}

/// How serious a [`Diag`] is. Ordered: `Info < Warning < Error`, so
/// `max()` over a report yields the exit-code-relevant severity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Informational: explains a property of the program (e.g. where a
    /// global flow is raised) without claiming anything is wrong.
    Info,
    /// Suspicious but not provably broken (possible deadlock, dead
    /// store, racy action).
    Warning,
    /// Provably broken (unsatisfiable wait, parse failure).
    Error,
}

impl Severity {
    /// Lower-case name, as used in rendered output and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// A unified analysis diagnostic: stable code, severity, primary span,
/// message, secondary notes and an optional fix hint.
///
/// Every static analysis pass (`secflow-analyze`, the atomicity check in
/// `secflow-core`) emits this type; renderers and the lint protocol op
/// consume it. Codes are `SF`-prefixed and stable (`SF010` = possible
/// deadlock, …); parse errors converted from [`Diagnostic`] keep their
/// `E`-prefixed codes.
///
/// # Examples
///
/// ```
/// use secflow_lang::diag::{Diag, Severity};
/// use secflow_lang::span::Span;
///
/// let d = Diag::warning("SF021", "dead store to `x`", Span::new(0, 6))
///     .with_fix("remove the assignment");
/// let r = d.render("x := 1; x := 2");
/// assert!(r.contains("warning[SF021]"));
/// assert!(r.contains("help: remove the assignment"));
/// assert_eq!(d.severity, Severity::Warning);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diag {
    /// Stable machine-readable code (`SF0xx`, or `E0xxx` for converted
    /// parse errors).
    pub code: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Primary source location.
    pub span: Span,
    /// Secondary notes (e.g. "declared here").
    pub notes: Vec<(String, Span)>,
    /// Optional suggestion for fixing the finding.
    pub fix: Option<String>,
}

impl Diag {
    /// Creates a diagnostic with an explicit severity.
    pub fn new(
        severity: Severity,
        code: &'static str,
        message: impl Into<String>,
        span: Span,
    ) -> Self {
        Diag {
            code,
            severity,
            message: message.into(),
            span,
            notes: Vec::new(),
            fix: None,
        }
    }

    /// An [`Severity::Error`] diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>, span: Span) -> Self {
        Diag::new(Severity::Error, code, message, span)
    }

    /// A [`Severity::Warning`] diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>, span: Span) -> Self {
        Diag::new(Severity::Warning, code, message, span)
    }

    /// An [`Severity::Info`] diagnostic.
    pub fn info(code: &'static str, message: impl Into<String>, span: Span) -> Self {
        Diag::new(Severity::Info, code, message, span)
    }

    /// Attaches a secondary note.
    pub fn with_note(mut self, message: impl Into<String>, span: Span) -> Self {
        self.notes.push((message.into(), span));
        self
    }

    /// Attaches a fix suggestion.
    pub fn with_fix(mut self, fix: impl Into<String>) -> Self {
        self.fix = Some(fix.into());
        self
    }

    /// Key for the deterministic report order: by position, then code,
    /// then message (so equal-position diagnostics still sort stably).
    pub fn sort_key(&self) -> (u32, u32, &'static str, &str) {
        (self.span.start, self.span.end, self.code, &self.message)
    }

    /// Renders the diagnostic against its source text, with a caret
    /// line, notes, and the fix hint as a `help:` line.
    pub fn render(&self, source: &str) -> String {
        let idx = LineIndex::new(source);
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        render_snippet(&mut out, source, &idx, self.span);
        for (msg, span) in &self.notes {
            out.push_str(&format!("note: {msg}\n"));
            render_snippet(&mut out, source, &idx, *span);
        }
        if let Some(fix) = &self.fix {
            out.push_str(&format!("help: {fix}\n"));
        }
        out
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} (at {})",
            self.severity, self.code, self.message, self.span
        )
    }
}

impl From<&Diagnostic> for Diag {
    /// Parse errors become `Error`-severity diags with their `E`-code,
    /// so lint reports can mix front-end and analysis findings.
    fn from(d: &Diagnostic) -> Diag {
        Diag {
            code: d.code.as_str(),
            severity: Severity::Error,
            message: d.message.clone(),
            span: d.span,
            notes: d.notes.clone(),
            fix: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(ErrorCode::UnexpectedToken.as_str(), "E0101");
        assert_eq!(ErrorCode::UndeclaredIdentifier.to_string(), "E0202");
    }

    #[test]
    fn render_points_at_the_offender() {
        let src = "x := y + z";
        let d = Diagnostic::error(
            ErrorCode::UndeclaredIdentifier,
            "`z` is not declared",
            Span::new(9, 10),
        );
        let r = d.render(src);
        assert!(r.contains("line 1, column 10"), "{r}");
        assert!(r.contains("x := y + z"));
        assert!(r.lines().last().unwrap().trim_end().ends_with('^'));
    }

    #[test]
    fn render_multiline_source() {
        let src = "begin\n  x := 1;\n  oops\nend";
        let d = Diagnostic::error(
            ErrorCode::UnexpectedToken,
            "what is oops",
            Span::new(18, 22),
        );
        let r = d.render(src);
        assert!(r.contains("line 3"), "{r}");
        assert!(r.contains("oops"));
    }

    #[test]
    fn notes_are_rendered_after_the_error() {
        let src = "var x : integer; var x : integer; skip";
        let d = Diagnostic::error(
            ErrorCode::DuplicateDeclaration,
            "`x` declared twice",
            Span::new(21, 22),
        )
        .with_note("first declared here", Span::new(4, 5));
        let r = d.render(src);
        let err_pos = r.find("error[").unwrap();
        let note_pos = r.find("note:").unwrap();
        assert!(err_pos < note_pos);
    }

    #[test]
    fn display_is_single_line() {
        let d = Diagnostic::error(ErrorCode::KindMismatch, "boom", Span::new(1, 2));
        assert_eq!(d.to_string(), "error[E0203]: boom (at 1..2)");
    }

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Warning.as_str(), "warning");
    }

    #[test]
    fn diag_renders_severity_code_and_fix() {
        let src = "wait(s)";
        let d = Diag::warning("SF010", "`wait(s)` can block forever", Span::new(0, 7))
            .with_note("declared here", Span::new(5, 6))
            .with_fix("add a matching signal(s)");
        let r = d.render(src);
        assert!(
            r.contains("warning[SF010]: `wait(s)` can block forever"),
            "{r}"
        );
        assert!(r.contains("note: declared here"), "{r}");
        assert!(r.contains("help: add a matching signal(s)"), "{r}");
        assert!(r.contains('^'), "{r}");
    }

    #[test]
    fn diag_sort_key_orders_by_position_then_code() {
        let a = Diag::warning("SF021", "a", Span::new(4, 5));
        let b = Diag::error("SF003", "b", Span::new(4, 5));
        let c = Diag::info("SF030", "c", Span::new(9, 10));
        let mut v = [c.clone(), a.clone(), b.clone()];
        v.sort_by(|x, y| x.sort_key().cmp(&y.sort_key()));
        assert_eq!(v[0], b); // SF003 < SF021 at the same span
        assert_eq!(v[1], a);
        assert_eq!(v[2], c);
    }

    #[test]
    fn parse_diagnostics_convert_to_diags() {
        let d = Diagnostic::error(ErrorCode::UnexpectedToken, "expected `;`", Span::new(5, 6))
            .with_note("after this", Span::new(0, 1));
        let diag = Diag::from(&d);
        assert_eq!(diag.code, "E0101");
        assert_eq!(diag.severity, Severity::Error);
        assert_eq!(diag.notes.len(), 1);
    }
}
