//! Diagnostics: structured errors with source locations and rendering.

use std::fmt;

use crate::span::{LineIndex, Span};

/// Stable machine-readable error codes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ErrorCode {
    /// A character the lexer does not recognize.
    UnknownCharacter,
    /// An integer literal that does not fit in `i64`.
    IntegerOverflow,
    /// The parser found a token it did not expect.
    UnexpectedToken,
    /// A name was declared twice.
    DuplicateDeclaration,
    /// A name was used without being declared.
    UndeclaredIdentifier,
    /// A semaphore was used where a data variable is required, or vice
    /// versa.
    KindMismatch,
    /// A `cobegin` with fewer than two processes, an empty `begin`, etc.
    MalformedStatement,
    /// A semaphore initial value outside `0..=i64::MAX`.
    BadSemaphoreInit,
}

impl ErrorCode {
    /// The stable `E`-prefixed code string.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::UnknownCharacter => "E0001",
            ErrorCode::IntegerOverflow => "E0002",
            ErrorCode::UnexpectedToken => "E0101",
            ErrorCode::DuplicateDeclaration => "E0201",
            ErrorCode::UndeclaredIdentifier => "E0202",
            ErrorCode::KindMismatch => "E0203",
            ErrorCode::MalformedStatement => "E0102",
            ErrorCode::BadSemaphoreInit => "E0204",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// A diagnostic: an error (or note) tied to a source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable message.
    pub message: String,
    /// Primary source location.
    pub span: Span,
    /// Secondary notes (e.g. "first declared here").
    pub notes: Vec<(String, Span)>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(code: ErrorCode, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            code,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Attaches a secondary note.
    pub fn with_note(mut self, message: impl Into<String>, span: Span) -> Self {
        self.notes.push((message.into(), span));
        self
    }

    /// Renders the diagnostic against its source text, with a caret line.
    ///
    /// # Examples
    ///
    /// ```
    /// use secflow_lang::diag::{Diagnostic, ErrorCode};
    /// use secflow_lang::span::Span;
    ///
    /// let d = Diagnostic::error(ErrorCode::UnexpectedToken, "expected `;`", Span::new(5, 6));
    /// let rendered = d.render("begin x end");
    /// assert!(rendered.contains("error[E0101]"));
    /// assert!(rendered.contains('^'));
    /// ```
    pub fn render(&self, source: &str) -> String {
        let idx = LineIndex::new(source);
        let mut out = format!("error[{}]: {}\n", self.code, self.message);
        render_snippet(&mut out, source, &idx, self.span);
        for (msg, span) in &self.notes {
            out.push_str(&format!("note: {msg}\n"));
            render_snippet(&mut out, source, &idx, *span);
        }
        out
    }
}

fn render_snippet(out: &mut String, source: &str, idx: &LineIndex, span: Span) {
    let (line, col) = idx.line_col(span.start);
    out.push_str(&format!("  --> line {line}, column {col}\n"));
    if let Some((start, end)) = idx.line_range(line) {
        let text = &source[start as usize..end as usize];
        out.push_str(&format!("   | {text}\n"));
        let caret_len =
            (span.len().max(1) as usize).min(text.len().saturating_sub(col as usize - 1).max(1));
        out.push_str("   | ");
        out.push_str(&" ".repeat(col as usize - 1));
        out.push_str(&"^".repeat(caret_len));
        out.push('\n');
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}]: {} (at {})",
            self.code, self.message, self.span
        )
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(ErrorCode::UnexpectedToken.as_str(), "E0101");
        assert_eq!(ErrorCode::UndeclaredIdentifier.to_string(), "E0202");
    }

    #[test]
    fn render_points_at_the_offender() {
        let src = "x := y + z";
        let d = Diagnostic::error(
            ErrorCode::UndeclaredIdentifier,
            "`z` is not declared",
            Span::new(9, 10),
        );
        let r = d.render(src);
        assert!(r.contains("line 1, column 10"), "{r}");
        assert!(r.contains("x := y + z"));
        assert!(r.lines().last().unwrap().trim_end().ends_with('^'));
    }

    #[test]
    fn render_multiline_source() {
        let src = "begin\n  x := 1;\n  oops\nend";
        let d = Diagnostic::error(
            ErrorCode::UnexpectedToken,
            "what is oops",
            Span::new(18, 22),
        );
        let r = d.render(src);
        assert!(r.contains("line 3"), "{r}");
        assert!(r.contains("oops"));
    }

    #[test]
    fn notes_are_rendered_after_the_error() {
        let src = "var x : integer; var x : integer; skip";
        let d = Diagnostic::error(
            ErrorCode::DuplicateDeclaration,
            "`x` declared twice",
            Span::new(21, 22),
        )
        .with_note("first declared here", Span::new(4, 5));
        let r = d.render(src);
        let err_pos = r.find("error[").unwrap();
        let note_pos = r.find("note:").unwrap();
        assert!(err_pos < note_pos);
    }

    #[test]
    fn display_is_single_line() {
        let d = Diagnostic::error(ErrorCode::KindMismatch, "boom", Span::new(1, 2));
        assert_eq!(d.to_string(), "error[E0203]: boom (at 1..2)");
    }
}
