//! Fluent programmatic construction of programs (no source text needed).
//!
//! The workload generators and many tests build ASTs directly; this module
//! gives them a compact, panic-on-misuse API. All nodes carry
//! [`Span::DUMMY`].
//!
//! # Examples
//!
//! ```
//! use secflow_lang::builder::{ProgramBuilder, e, s};
//!
//! let mut b = ProgramBuilder::new();
//! let x = b.data("x");
//! let sem = b.sem("lock", 1);
//! let prog = b.finish(s::seq([
//!     s::wait(sem),
//!     s::assign(x, e::add(e::var(x), e::konst(1))),
//!     s::signal(sem),
//! ]));
//! assert_eq!(prog.statement_count(), 4);
//! ```

use crate::ast::{Expr, Program, Stmt, SymbolTable, VarId, VarKind};
use crate::span::Span;

/// Builds a [`Program`] by declaring names and then supplying a body.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    symbols: SymbolTable,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Declares a data variable (initial value 0).
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn data(&mut self, name: &str) -> VarId {
        self.symbols
            .declare(name, VarKind::Data, 0, Span::DUMMY)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Declares a data variable with an initial value.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn data_init(&mut self, name: &str, init: i64) -> VarId {
        self.symbols
            .declare(name, VarKind::Data, init, Span::DUMMY)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Declares a semaphore with initial count `init`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or a negative count.
    pub fn sem(&mut self, name: &str, init: i64) -> VarId {
        assert!(init >= 0, "semaphore initial count must be non-negative");
        self.symbols
            .declare(name, VarKind::Semaphore, init, Span::DUMMY)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Read-only access to the symbol table under construction.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Finishes the program with `body`.
    pub fn finish(self, body: Stmt) -> Program {
        Program::new(self.symbols, body)
    }
}

/// Expression constructors.
pub mod e {
    use super::*;
    use crate::ast::{BinOp, UnOp};

    /// An integer constant.
    pub fn konst(n: i64) -> Expr {
        Expr::Const(n, Span::DUMMY)
    }

    /// A variable read.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v, Span::DUMMY)
    }

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(l),
            rhs: Box::new(r),
            span: Span::DUMMY,
        }
    }

    /// `l + r`
    pub fn add(l: Expr, r: Expr) -> Expr {
        bin(BinOp::Add, l, r)
    }

    /// `l - r`
    pub fn sub(l: Expr, r: Expr) -> Expr {
        bin(BinOp::Sub, l, r)
    }

    /// `l * r`
    pub fn mul(l: Expr, r: Expr) -> Expr {
        bin(BinOp::Mul, l, r)
    }

    /// `l / r`
    pub fn div(l: Expr, r: Expr) -> Expr {
        bin(BinOp::Div, l, r)
    }

    /// `l % r`
    pub fn rem(l: Expr, r: Expr) -> Expr {
        bin(BinOp::Mod, l, r)
    }

    /// `l = r`
    pub fn eq(l: Expr, r: Expr) -> Expr {
        bin(BinOp::Eq, l, r)
    }

    /// `l # r`
    pub fn ne(l: Expr, r: Expr) -> Expr {
        bin(BinOp::Ne, l, r)
    }

    /// `l < r`
    pub fn lt(l: Expr, r: Expr) -> Expr {
        bin(BinOp::Lt, l, r)
    }

    /// `l <= r`
    pub fn le(l: Expr, r: Expr) -> Expr {
        bin(BinOp::Le, l, r)
    }

    /// `l > r`
    pub fn gt(l: Expr, r: Expr) -> Expr {
        bin(BinOp::Gt, l, r)
    }

    /// `l >= r`
    pub fn ge(l: Expr, r: Expr) -> Expr {
        bin(BinOp::Ge, l, r)
    }

    /// `l and r`
    pub fn and(l: Expr, r: Expr) -> Expr {
        bin(BinOp::And, l, r)
    }

    /// `l or r`
    pub fn or(l: Expr, r: Expr) -> Expr {
        bin(BinOp::Or, l, r)
    }

    /// `-x`
    pub fn neg(x: Expr) -> Expr {
        Expr::Unary {
            op: UnOp::Neg,
            arg: Box::new(x),
            span: Span::DUMMY,
        }
    }

    /// `not x`
    pub fn not(x: Expr) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            arg: Box::new(x),
            span: Span::DUMMY,
        }
    }
}

/// Statement constructors.
pub mod s {
    use super::*;

    /// `skip`
    pub fn skip() -> Stmt {
        Stmt::Skip(Span::DUMMY)
    }

    /// `var := expr`
    pub fn assign(var: VarId, expr: Expr) -> Stmt {
        Stmt::Assign {
            var,
            expr,
            span: Span::DUMMY,
        }
    }

    /// `if cond then then_branch else else_branch`
    pub fn if_else(cond: Expr, then_branch: Stmt, else_branch: Stmt) -> Stmt {
        Stmt::If {
            cond,
            then_branch: Box::new(then_branch),
            else_branch: Some(Box::new(else_branch)),
            span: Span::DUMMY,
        }
    }

    /// One-armed `if cond then then_branch`.
    pub fn if_then(cond: Expr, then_branch: Stmt) -> Stmt {
        Stmt::If {
            cond,
            then_branch: Box::new(then_branch),
            else_branch: None,
            span: Span::DUMMY,
        }
    }

    /// `while cond do body`
    pub fn while_do(cond: Expr, body: Stmt) -> Stmt {
        Stmt::While {
            cond,
            body: Box::new(body),
            span: Span::DUMMY,
        }
    }

    /// `begin … end`
    ///
    /// # Panics
    ///
    /// Panics on an empty statement list; use [`skip`] instead.
    pub fn seq(stmts: impl IntoIterator<Item = Stmt>) -> Stmt {
        let stmts: Vec<Stmt> = stmts.into_iter().collect();
        assert!(!stmts.is_empty(), "empty begin/end; use skip()");
        Stmt::Seq {
            stmts,
            span: Span::DUMMY,
        }
    }

    /// `cobegin … coend`
    ///
    /// # Panics
    ///
    /// Panics with fewer than two branches.
    pub fn cobegin(branches: impl IntoIterator<Item = Stmt>) -> Stmt {
        let branches: Vec<Stmt> = branches.into_iter().collect();
        assert!(branches.len() >= 2, "cobegin needs at least two processes");
        Stmt::Cobegin {
            branches,
            span: Span::DUMMY,
        }
    }

    /// `wait(sem)`
    pub fn wait(sem: VarId) -> Stmt {
        Stmt::Wait {
            sem,
            span: Span::DUMMY,
        }
    }

    /// `signal(sem)`
    pub fn signal(sem: VarId) -> Stmt {
        Stmt::Signal {
            sem,
            span: Span::DUMMY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_program;

    #[test]
    fn builds_and_prints() {
        let mut b = ProgramBuilder::new();
        let x = b.data("x");
        let y = b.data("y");
        let p = b.finish(s::if_else(
            e::eq(e::var(x), e::konst(0)),
            s::assign(y, e::konst(1)),
            s::assign(y, e::konst(2)),
        ));
        let text = print_program(&p);
        assert!(text.contains("if x = 0 then"));
        let reparsed = crate::parse(&text).unwrap();
        assert_eq!(reparsed.statement_count(), p.statement_count());
    }

    #[test]
    #[should_panic(expected = "declared more than once")]
    fn duplicate_name_panics() {
        let mut b = ProgramBuilder::new();
        b.data("x");
        b.data("x");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_branch_cobegin_panics() {
        let _ = s::cobegin([s::skip()]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_seq_panics() {
        let _ = s::seq([]);
    }

    #[test]
    fn data_init_sets_initial_value() {
        let mut b = ProgramBuilder::new();
        let x = b.data_init("x", 7);
        let p = b.finish(s::skip());
        assert_eq!(p.symbols.info(x).init, 7);
    }

    #[test]
    fn expression_helpers_cover_all_operators() {
        let mut b = ProgramBuilder::new();
        let x = b.data("x");
        let all = [
            e::add(e::var(x), e::konst(1)),
            e::sub(e::var(x), e::konst(1)),
            e::mul(e::var(x), e::konst(1)),
            e::div(e::var(x), e::konst(1)),
            e::rem(e::var(x), e::konst(1)),
            e::eq(e::var(x), e::konst(1)),
            e::ne(e::var(x), e::konst(1)),
            e::lt(e::var(x), e::konst(1)),
            e::le(e::var(x), e::konst(1)),
            e::gt(e::var(x), e::konst(1)),
            e::ge(e::var(x), e::konst(1)),
            e::and(e::var(x), e::konst(1)),
            e::or(e::var(x), e::konst(1)),
            e::neg(e::var(x)),
            e::not(e::var(x)),
        ];
        for expr in all {
            assert!(expr.node_count() >= 2);
        }
    }
}
