//! Kill-and-restart harness for `serve --cache-dir`: a server is fed a
//! corpus over stdio, killed with SIGKILL (no destructor, no flush —
//! the real crash), and restarted in the same directory. The warm
//! server must answer the whole corpus from disk: `cached:true`,
//! byte-identical replies modulo the `us` timing field, zero explored
//! states. A second test flips one journal byte between the kill and
//! the restart and asserts recovery skips exactly one frame.

#![cfg(unix)]

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStderr, ChildStdin, ChildStdout, Command, Stdio};
use std::time::Duration;

use secflow_server::Json;

const LEAKY: &str = "var x, y : integer; sem : semaphore;
    cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("secflow-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Server {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Server {
    fn spawn(dir: &Path) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_secflow"))
            .args([
                "serve",
                "--cache-dir",
                dir.to_str().unwrap(),
                "--fsync",
                "always",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("server spawns");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Server {
            child,
            stdin,
            stdout,
        }
    }

    /// Sends every line, then collects one reply per line. Pipelined
    /// replies can arrive out of order, so they are keyed by `id`.
    fn round_trip(&mut self, lines: &[String]) -> HashMap<u64, Json> {
        for line in lines {
            writeln!(self.stdin, "{line}").expect("send");
        }
        self.stdin.flush().unwrap();
        let mut replies = HashMap::new();
        for _ in lines {
            let mut reply = String::new();
            self.stdout.read_line(&mut reply).expect("reply");
            let v = Json::parse(reply.trim()).expect("reply parses");
            let id = v.get("id").and_then(Json::as_u64).expect("reply has id");
            replies.insert(id, v);
        }
        replies
    }

    fn stats(&mut self) -> Json {
        writeln!(self.stdin, r#"{{"id":9999,"op":"stats"}}"#).unwrap();
        self.stdin.flush().unwrap();
        let mut reply = String::new();
        self.stdout.read_line(&mut reply).expect("stats reply");
        Json::parse(reply.trim()).expect("stats parses")
    }

    /// SIGKILL — the process gets no chance to flush or unwind.
    fn kill_dash_nine(mut self) {
        self.child.kill().expect("kill");
        self.child.wait().expect("reap");
    }
}

/// A subprocess node serving TCP on an OS-assigned ephemeral port (the
/// shared no-guessed-ports story: `--addr 127.0.0.1:0`, then the
/// announced address is read back from the banner). This is what lets
/// multi-node tests run under `--test-threads 4` without colliding.
struct TcpNode {
    child: Child,
    addr: String,
    // Held open so the child never sees a closed stderr pipe.
    _stderr: BufReader<ChildStderr>,
}

impl TcpNode {
    fn spawn(dir: &Path, extra: &[&str]) -> TcpNode {
        let mut child = Command::new(env!("CARGO_BIN_EXE_secflow"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--cache-dir",
                dir.to_str().unwrap(),
                "--fsync",
                "always",
            ])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("node spawns");
        let mut stderr = BufReader::new(child.stderr.take().unwrap());
        let addr = loop {
            let mut line = String::new();
            let n = stderr.read_line(&mut line).expect("read banner");
            assert!(n > 0, "node exited before announcing its address");
            if let Some(rest) = line.split("listening on ").nth(1) {
                break rest.split_whitespace().next().unwrap().to_string();
            }
        };
        TcpNode {
            child,
            addr,
            _stderr: stderr,
        }
    }

    /// One connection, all lines in, one reply per line, keyed by id.
    fn round_trip(&self, lines: &[String]) -> HashMap<u64, Json> {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
        let mut writer = stream.try_clone().unwrap();
        for line in lines {
            writeln!(writer, "{line}").expect("send");
        }
        writer.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let mut replies = HashMap::new();
        for _ in lines {
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("reply");
            let v = Json::parse(reply.trim()).expect("reply parses");
            let id = v.get("id").and_then(Json::as_u64).expect("reply has id");
            replies.insert(id, v);
        }
        replies
    }

    fn stats(&self) -> Json {
        self.round_trip(&[r#"{"id":9999,"op":"stats"}"#.to_string()])
            .remove(&9999)
            .expect("stats reply")
    }

    fn kill_dash_nine(mut self) {
        self.child.kill().expect("kill");
        self.child.wait().expect("reap");
    }
}

fn corpus() -> Vec<String> {
    let src = |s: &str| Json::Str(s.to_string());
    vec![
        format!(
            r#"{{"id":1,"op":"certify","source":{},"classes":{{"x":"high"}}}}"#,
            src(LEAKY)
        ),
        format!(
            r#"{{"id":2,"op":"certify","source":{}}}"#,
            src("var a, b : integer; a := 1; b := a")
        ),
        format!(
            r#"{{"id":3,"op":"infer","source":{},"pins":{{"x":"high","y":"low"}}}}"#,
            src(LEAKY)
        ),
        format!(r#"{{"id":4,"op":"lint","source":{}}}"#, src(LEAKY)),
        format!(
            r#"{{"id":5,"op":"explore","source":{},"inputs":{{"x":1}}}}"#,
            src(LEAKY)
        ),
    ]
}

/// Drops the per-response `us` timing field at every nesting level.
fn strip_us(v: &Json) -> Json {
    match v {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "us")
                .map(|(k, val)| (k.clone(), strip_us(val)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_us).collect()),
        other => other.clone(),
    }
}

fn persist_stat(stats: &Json, field: &str) -> u64 {
    stats
        .get("persist")
        .and_then(|p| p.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("persist.{field} missing in {stats:?}"))
}

#[test]
fn sigkilled_server_warm_starts_with_identical_replies() {
    let dir = tmp_dir("warm");
    let corpus = corpus();

    // Cold server: first pass computes (and journals, fsync always);
    // second pass is the cached baseline the warm replies must match.
    let mut cold = Server::spawn(&dir);
    cold.round_trip(&corpus);
    let baseline = cold.round_trip(&corpus);
    for (id, v) in &baseline {
        assert_eq!(
            v.get("cached").and_then(Json::as_bool),
            Some(true),
            "id {id} not cached on second pass"
        );
    }
    cold.kill_dash_nine();

    // Warm server, same directory, after the kill.
    let mut warm = Server::spawn(&dir);
    let warm_replies = warm.round_trip(&corpus);
    for (id, v) in &baseline {
        assert_eq!(
            strip_us(&warm_replies[id]).to_string(),
            strip_us(v).to_string(),
            "id {id} differs after recovery"
        );
    }
    let stats = warm.stats();
    assert_eq!(
        persist_stat(&stats, "entries_recovered"),
        corpus.len() as u64
    );
    assert_eq!(persist_stat(&stats, "frames_skipped"), 0);
    assert_eq!(
        stats.get("explore_states").and_then(Json::as_u64),
        Some(0),
        "warm corpus must trigger zero re-exploration"
    );
    assert_eq!(
        stats.get("cache_misses").and_then(Json::as_u64),
        Some(0),
        "warm corpus must be served entirely from disk"
    );
    warm.kill_dash_nine();
}

/// The TCP variant of the kill-and-restart story, composed with peer
/// warm start: node A (its own store) is SIGKILLed, restarted warm on a
/// *new* ephemeral port, and then a cold node B — empty store —
/// `--sync-from`s it at boot. After A dies for good, B alone answers
/// A's whole corpus from its shipped journal: `cached:true`,
/// byte-identical modulo `us`, zero re-exploration, zero misses.
#[test]
fn sigkilled_node_warm_starts_a_cold_peer_over_tcp() {
    let dir_a = tmp_dir("peer-src");
    let dir_b = tmp_dir("peer-dst");
    let corpus = corpus();

    let a = TcpNode::spawn(&dir_a, &[]);
    a.round_trip(&corpus);
    let baseline = a.round_trip(&corpus);
    for (id, v) in &baseline {
        assert_eq!(
            v.get("cached").and_then(Json::as_bool),
            Some(true),
            "id {id} not cached on second pass"
        );
    }
    a.kill_dash_nine();

    // A warm restart on a fresh port — the store, not the socket, is
    // the identity — then B ships its journal before serving.
    let a2 = TcpNode::spawn(&dir_a, &[]);
    let b = TcpNode::spawn(&dir_b, &["--sync-from", &a2.addr]);
    a2.kill_dash_nine();

    let synced = b.round_trip(&corpus);
    for (id, v) in &baseline {
        assert_eq!(
            strip_us(&synced[id]).to_string(),
            strip_us(v).to_string(),
            "id {id} differs after peer sync"
        );
    }
    let stats = b.stats();
    assert_eq!(
        stats.get("explore_states").and_then(Json::as_u64),
        Some(0),
        "peer-synced corpus must trigger zero re-exploration"
    );
    assert_eq!(
        stats.get("cache_misses").and_then(Json::as_u64),
        Some(0),
        "peer-synced corpus must be served entirely from the shipped journal"
    );
    b.kill_dash_nine();
}

#[test]
fn corrupted_journal_byte_skips_one_frame_on_warm_start() {
    let dir = tmp_dir("corrupt");
    let corpus = corpus();
    let mut cold = Server::spawn(&dir);
    cold.round_trip(&corpus);
    cold.kill_dash_nine();

    let journal = dir.join("journal.wal");
    let mut bytes = std::fs::read(&journal).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&journal, &bytes).unwrap();

    let mut warm = Server::spawn(&dir);
    let stats = warm.stats();
    assert_eq!(persist_stat(&stats, "frames_skipped"), 1);
    assert_eq!(
        persist_stat(&stats, "entries_recovered"),
        corpus.len() as u64 - 1
    );
    // The store still serves: every request answers, one recomputes.
    let replies = warm.round_trip(&corpus);
    let recomputed = replies
        .values()
        .filter(|v| v.get("cached").and_then(Json::as_bool) == Some(false))
        .count();
    assert_eq!(recomputed, 1, "exactly the corrupted entry recomputes");
    warm.kill_dash_nine();
}
