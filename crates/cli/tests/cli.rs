//! End-to-end tests of the `secflow` binary: every subcommand, exit
//! codes, and report shapes.

use std::path::PathBuf;
use std::process::{Command, Output};

fn secflow(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_secflow"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_program(name: &str, source: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("secflow-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, source).unwrap();
    path
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

const LEAKY: &str = "var h, l : integer; l := h";
const SAFE: &str = "var h, l : integer; l := 7";
const SYNC: &str = "var h, l : integer; sem : semaphore;
cobegin if h = 0 then signal(sem) || begin wait(sem); l := 0 end coend";

#[test]
fn help_prints_usage() {
    let out = secflow(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = secflow(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stdout(&out).contains("USAGE"));
}

#[test]
fn unknown_command_is_an_error() {
    let out = secflow(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn certify_rejects_leak_with_exit_1() {
    let p = write_program("leaky.sfl", LEAKY);
    let out = secflow(&["certify", p.to_str().unwrap(), "--class", "h=high"]);
    assert_eq!(out.status.code(), Some(1));
    let s = stdout(&out);
    assert!(s.contains("NOT certified"), "{s}");
    assert!(s.contains("direct flow"), "{s}");
}

#[test]
fn certify_accepts_safe_program_with_exit_0() {
    let p = write_program("safe.sfl", SAFE);
    let out = secflow(&["certify", p.to_str().unwrap(), "--class", "h=high"]);
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("certified"));
}

#[test]
fn certify_baseline_misses_the_sync_channel() {
    let p = write_program("sync.sfl", SYNC);
    // Semaphore High so the local guard check passes in both mechanisms.
    let args_common = ["--class", "h=high", "--class", "sem=high"];
    let cfm = secflow(&[&["certify", p.to_str().unwrap()], &args_common[..]].concat());
    assert_eq!(cfm.status.code(), Some(1), "CFM rejects");
    let base = secflow(
        &[
            &["certify", p.to_str().unwrap(), "--baseline"],
            &args_common[..],
        ]
        .concat(),
    );
    assert!(base.status.success(), "baseline certifies");
}

#[test]
fn certify_with_linear_lattice() {
    let p = write_program("linear.sfl", "var a, b : integer; b := a");
    let ok = secflow(&[
        "certify",
        p.to_str().unwrap(),
        "--lattice",
        "linear:4",
        "--class",
        "a=1",
        "--class",
        "b=3",
    ]);
    assert!(ok.status.success(), "{}", stdout(&ok));
    let bad = secflow(&[
        "certify",
        p.to_str().unwrap(),
        "--lattice",
        "linear:4",
        "--class",
        "a=3",
        "--class",
        "b=1",
    ]);
    assert_eq!(bad.status.code(), Some(1));
}

#[test]
fn prove_emits_a_proof_for_certified_programs() {
    let p = write_program("provable.sfl", "var h, l : integer; l := 7");
    let out = secflow(&["prove", p.to_str().unwrap(), "--class", "h=high"]);
    assert!(out.status.success(), "{}", stdout(&out));
    let s = stdout(&out);
    assert!(s.contains("completely invariant flow proof"), "{s}");
    assert!(s.contains("assignment axiom"), "{s}");
}

#[test]
fn prove_refuses_uncertified_programs() {
    let p = write_program("unprovable.sfl", LEAKY);
    let out = secflow(&["prove", p.to_str().unwrap(), "--class", "h=high"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("no completely invariant proof"));
}

#[test]
fn run_executes_and_prints_finals() {
    let p = write_program(
        "runme.sfl",
        "var x, y : integer; begin y := x * 2; x := 0 end",
    );
    let out = secflow(&["run", p.to_str().unwrap(), "--input", "x=21"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("y = 42"), "{s}");
    assert!(s.contains("Terminated"), "{s}");
}

#[test]
fn run_reports_deadlock_with_exit_1() {
    let p = write_program("dead.sfl", "var s : semaphore; wait(s)");
    let out = secflow(&["run", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("Deadlocked"));
}

#[test]
fn run_with_trace_lists_steps() {
    let p = write_program("traced.sfl", "var x : integer; x := 1");
    let out = secflow(&["run", p.to_str().unwrap(), "--trace"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("P0"), "{}", stdout(&out));
}

#[test]
fn explore_counts_outcomes() {
    let p = write_program(
        "race.sfl",
        "var x : integer; cobegin x := 1 || x := 2 coend",
    );
    let out = secflow(&["explore", p.to_str().unwrap()]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("terminal outcomes: 2"), "{s}");
    assert!(s.contains("x=1"), "{s}");
    assert!(s.contains("x=2"), "{s}");
}

#[test]
fn leaktest_finds_interference() {
    let p = write_program("leak2.sfl", LEAKY);
    let out = secflow(&["leaktest", p.to_str().unwrap(), "--secret", "h"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("INTERFERES"));
}

#[test]
fn leaktest_passes_safe_programs() {
    let p = write_program("safe2.sfl", SAFE);
    let out = secflow(&["leaktest", p.to_str().unwrap(), "--secret", "h"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("no interference"));
}

#[test]
fn infer_prints_least_binding() {
    let p = write_program(
        "infer.sfl",
        "var a, b, c : integer; begin b := a; c := b end",
    );
    let out = secflow(&["infer", p.to_str().unwrap(), "--pin", "a=high"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("b: High"), "{s}");
    assert!(s.contains("c: High"), "{s}");
}

#[test]
fn infer_reports_unsatisfiable_pins() {
    let p = write_program("unsat.sfl", LEAKY);
    let out = secflow(&[
        "infer",
        p.to_str().unwrap(),
        "--pin",
        "h=high",
        "--pin",
        "l=low",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("no certifying binding"));
}

#[test]
fn fig3_demo_runs() {
    let out = secflow(&["fig3", "--x", "0"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("CFM:      REJECTED"), "{s}");
    assert!(s.contains("Dennings: certified"), "{s}");
    assert!(s.contains("y = 1 (x was 0)"), "{s}");
}

#[test]
fn prove_emit_then_checkproof_round_trips() {
    let dir = std::env::temp_dir().join("secflow-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_program("emitme.sfl", SYNC);
    let proof_path = dir.join("emitted.sfp");
    let out = secflow(&[
        "prove",
        prog.to_str().unwrap(),
        "--default",
        "high",
        "--emit",
        proof_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(proof_path.exists());

    // The emitted proof re-checks.
    let out = secflow(&[
        "checkproof",
        prog.to_str().unwrap(),
        "--proof",
        proof_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("proof checks"));

    // Tampering is caught by the checker.
    let text = std::fs::read_to_string(&proof_path).unwrap();
    let tampered_path = dir.join("tampered.sfp");
    std::fs::write(&tampered_path, text.replacen("high", "low", 1)).unwrap();
    let out = secflow(&[
        "checkproof",
        prog.to_str().unwrap(),
        "--proof",
        tampered_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("REJECTED"));
}

#[test]
fn checkproof_reports_syntax_errors() {
    let prog = write_program("cps.sfl", SAFE);
    let dir = std::env::temp_dir().join("secflow-cli-tests");
    let bad = dir.join("bad.sfp");
    std::fs::write(&bad, "garbage {").unwrap();
    let out = secflow(&[
        "checkproof",
        prog.to_str().unwrap(),
        "--proof",
        bad.to_str().unwrap(),
    ]);
    // An unparseable proof is a rejected proof (analysis failure, exit
    // 1), not a usage error.
    assert_eq!(out.status.code(), Some(1));
    let s = stdout(&out);
    assert!(s.contains("proof REJECTED"), "{s}");
    assert!(s.contains("syntax error"), "{s}");
}

#[test]
fn flows_lists_constraints() {
    let p = write_program("flows.sfl", SYNC);
    let out = secflow(&["flows", p.to_str().unwrap()]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("h -> sem"), "{s}");
    assert!(s.contains("sem -> l"), "{s}");
}

#[test]
fn flows_dot_highlights_violations() {
    let p = write_program("flows2.sfl", SYNC);
    let out = secflow(&["flows", p.to_str().unwrap(), "--dot", "--class", "h=high"]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("digraph"), "{s}");
    assert!(s.contains("color=red"), "{s}");
}

#[test]
fn atomicity_flags_racy_increments() {
    let p = write_program(
        "racy.sfl",
        "var x : integer; cobegin x := x + 1 || x := x + 1 coend",
    );
    let out = secflow(&["atomicity", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stdout(&out).contains("shared variables"),
        "{}",
        stdout(&out)
    );
}

#[test]
fn atomicity_passes_single_reference_programs() {
    let p = write_program("clean.sfl", SYNC);
    let out = secflow(&["atomicity", p.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("at most one"));
}

#[test]
fn parse_errors_render_with_carets() {
    let p = write_program("bad.sfl", "var x : integer; x := ");
    let out = secflow(&["certify", p.to_str().unwrap(), "--default", "low"]);
    // A parse error is an analysis failure (exit 1); exit 2 is reserved
    // for bad invocations.
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("expected an expression"), "{err}");
}

#[test]
fn lint_flags_the_sync_channel_program() {
    let p = write_program("lint_sync.sfl", SYNC);
    let out = secflow(&["lint", p.to_str().unwrap()]);
    // Warnings and infos do not fail the lint; only errors do.
    assert!(out.status.success(), "{}", stdout(&out));
    let s = stdout(&out);
    assert!(s.contains("SF010"), "{s}"); // may-deadlock
    assert!(s.contains("SF030"), "{s}"); // wait raises the flow class
    assert!(s.contains("1 file(s) linted"), "{s}");
}

#[test]
fn lint_error_severity_exits_1() {
    let p = write_program("lint_starve.sfl", "var s : semaphore; wait(s)");
    let out = secflow(&["lint", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let s = stdout(&out);
    assert!(s.contains("SF003"), "{s}"); // unsatisfiable wait is an error
}

#[test]
fn lint_json_emits_one_object_per_diagnostic() {
    let p = write_program("lint_json.sfl", SYNC);
    let out = secflow(&["lint", p.to_str().unwrap(), "--json"]);
    assert!(out.status.success(), "{}", stdout(&out));
    let s = stdout(&out);
    for line in s.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"code\":\"SF"), "{line}");
        assert!(line.contains("\"severity\":"), "{line}");
        assert!(line.contains("\"line\":"), "{line}");
    }
    assert!(s.contains("\"code\":\"SF010\""), "{s}");
}

#[test]
fn lint_reports_parse_errors_as_diagnostics() {
    let p = write_program("lint_bad.sfl", "var x : integer; x := ");
    let out = secflow(&["lint", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let s = stdout(&out);
    assert!(s.contains("expected an expression"), "{s}");
    assert!(s.contains("1 error(s)"), "{s}");
}

#[test]
fn lint_accepts_a_directory() {
    let dir = std::env::temp_dir().join("secflow-cli-lint-dir");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("a.sf"), SAFE).unwrap();
    std::fs::write(dir.join("b.sf"), SYNC).unwrap();
    std::fs::write(dir.join("ignored.txt"), "not a program").unwrap();
    let out = secflow(&["lint", dir.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stdout(&out));
    let s = stdout(&out);
    assert!(s.contains("2 file(s) linted"), "{s}");
    assert!(s.contains("b.sf:"), "{s}");
}

#[test]
fn undeclared_class_name_is_an_error() {
    let p = write_program("missing.sfl", SAFE);
    let out = secflow(&["certify", p.to_str().unwrap(), "--class", "ghost=high"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not declared"));
}

#[test]
fn serve_with_nonexistent_cache_dir_is_a_usage_error() {
    let out = secflow(&["serve", "--cache-dir", "/definitely/not/a/real/dir"]);
    // A typo'd path must be a structured exit-2 usage error up front —
    // never a panic, and never a silently created store elsewhere.
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("not an existing directory"), "{err}");
    assert!(err.contains("/definitely/not/a/real/dir"), "{err}");
}

#[test]
fn serve_with_unwritable_cache_dir_is_a_usage_error() {
    // A file where a directory is expected fails the same way.
    let file = write_program("not_a_dir.sfl", SAFE);
    let out = secflow(&["serve", "--cache-dir", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not an existing directory"));
}

#[test]
fn persistence_flags_require_cache_dir() {
    let out = secflow(&["serve", "--fsync", "always"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("require --cache-dir"));
}

#[test]
fn bad_fsync_mode_is_a_usage_error() {
    let dir = std::env::temp_dir().join("secflow-cli-fsync-dir");
    std::fs::create_dir_all(&dir).unwrap();
    let out = secflow(&[
        "serve",
        "--cache-dir",
        dir.to_str().unwrap(),
        "--fsync",
        "sometimes",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("bad fsync mode"), "{err}");
}

#[test]
fn cache_inspect_missing_dir_is_a_usage_error() {
    let out = secflow(&["cache-inspect", "/definitely/not/a/real/dir"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot inspect"));
}

#[test]
fn cache_inspect_reports_empty_and_corrupt_stores() {
    let dir = std::env::temp_dir().join("secflow-cli-inspect-dir");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // An empty store is clean.
    let out = secflow(&["cache-inspect", dir.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("CLEAN"), "{}", stdout(&out));

    // Garbage in the journal: reported and skipped, exit 1.
    std::fs::write(dir.join("journal.wal"), b"this is not a frame").unwrap();
    let out = secflow(&["cache-inspect", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("CORRUPT"), "{}", stdout(&out));

    // --json emits one machine-readable object.
    let out = secflow(&["cache-inspect", dir.to_str().unwrap(), "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let s = stdout(&out);
    assert!(s.trim().starts_with('{') && s.trim().ends_with('}'), "{s}");
    assert!(s.contains("\"frames_skipped\":1"), "{s}");
    assert!(s.contains("\"clean\":false"), "{s}");
}
