//! `secflow` — certify, prove, run, explore, leak-test and repair
//! information-flow properties of parallel programs.
//!
//! ```text
//! secflow certify <file> --class x=high --class y=low [--default low] [--baseline]
//! secflow prove   <file> --class … [--default …]
//! secflow run     <file> [--input x=3] [--seed N] [--fuel N] [--trace]
//! secflow explore <file> [--input x=3] [--max-states N]
//! secflow leaktest <file> --secret x [--observe y,z] [--values 0,1]
//! secflow infer   <file> --pin x=high [--pin y=low] [--lattice linear:4]
//! secflow fig3    [--x N]
//! ```
//!
//! Classes are `low`/`high` for the default two-point lattice, or `0..n-1`
//! with `--lattice linear:n`.

use std::collections::BTreeMap;
use std::fmt::Display;
use std::path::PathBuf;
use std::process::ExitCode;

use secflow_analyze::AnalysisReport;
use secflow_cert::{
    emit_certificate, show_linear_class, show_two_class, validate_certificate, Json,
};
use secflow_core::{
    certify, check_atomicity, denning_certify, infer_binding, FlowGraph, StaticBinding,
};
use secflow_lang::{parse, print_program, Diag, Program, Severity, VarId};
use secflow_lattice::{Extended, Lattice, Linear, LinearScheme, Scheme, TwoPoint, TwoPointScheme};
use secflow_logic::{check_proof, parse_proof, prove, render_proof, write_proof};
use secflow_runtime::{
    check_noninterference, explore_with, pexplore_with, run_traced, ExploreLimits, Machine,
    RandomSched, RoundRobin,
};
use secflow_workload::{fig3_baseline_gap_binding, fig3_program, FIG3_SOURCE};

const USAGE: &str = "\
secflow — information flow control for parallel programs (Reitman, SOSP 1979)

USAGE:
  secflow certify <file> [--class name=CLASS]... [--default CLASS]
                         [--lattice two|linear:N] [--baseline]
                         [--emit-proof cert.json]
  secflow prove   <file> [--class name=CLASS]... [--default CLASS]
                         [--lattice two|linear:N] [--emit proof.sfp]
  secflow checkproof <file> --proof proof.sfp|cert.json
                  [--lattice two|linear:N] [--json]
  secflow run     <file> [--input name=VALUE]... [--seed N] [--fuel N] [--trace]
  secflow explore <file> [--input name=VALUE]... [--max-states N] [--timeout-ms N]
                  [--threads N] [--no-por]
  secflow leaktest <file> --secret NAME [--observe a,b,c] [--values 0,1]
  secflow infer   <file> [--pin name=CLASS]... [--lattice two|linear:N]
  secflow flows   <file> [--class name=CLASS]... [--dot]
  secflow atomicity <file>
  secflow lint    <file|dir> [--json] [--threads N]
  secflow fig3    [--x VALUE]
  secflow serve   [--addr HOST:PORT] [--workers N] [--cache N] [--queue N]
                  [--max-fuel N] [--default-timeout-ms N] [--max-line-bytes N]
                  [--max-threads N] [--chaos SPEC] [--cache-dir DIR]
                  [--journal-max-bytes N] [--fsync always|interval|never]
                  [--front-end poll|threaded] [--pipeline-window N]
                  [--write-high-water BYTES] [--idle-timeout-ms N]
                  [--stall-timeout-ms N] (no --addr: serve stdin/stdout)
                  [--sync-from HOST:PORT] [--peers a,b,c --advertise
                  HOST:PORT [--max-hops N] [--peer-timeout-ms N]
                  [--replication N]]
  secflow router  --addr HOST:PORT --peers a,b,c [--max-hops N]
                  [--peer-timeout-ms N] [serve tuning flags]
  secflow cluster-status --peers a,b,c [--peer-timeout-ms N] [--json]
  secflow repair  --peers a,b,c [--peer-timeout-ms N] [--json]
  secflow cache-inspect <dir> [--json]
  secflow batch   <dir> [--class name=CLASS]... [--default CLASS]
                  [--lattice two|linear:N] [--workers N]
                  [--remote HOST:PORT [--retries N]]
  secflow gen     (--chain N [--vars K] | --philosophers N [--meals M]
                  | --indep N [--steps S]) [--request OP [--timeout-ms N]]
  secflow --version

CLASSES: low | high (two-point, default), or 0..N-1 with --lattice linear:N

EXIT CODES:
  0  success (certified / proof checks / no interference / no lint errors)
  1  analysis failure: parse error, REJECTED certification or proof,
     interference witness, or error-severity lint diagnostics
  2  usage error (unknown command, bad flag, unreadable file, ...)

`serve` speaks a JSON-lines protocol; see DESIGN.md (Serving) for the
request/response format. `lint` runs the secflow-analyze passes and
prints unified SF-code diagnostics (one JSON object per line with
--json). `serve --chaos` takes a deterministic fault-plan spec such as
`seed=7,panic=5,io=20,latency=50,latency_ms=2,short=10,stall=5,drop_connects=3,max_faults=40`
(per-mille rates; also read from the SECFLOW_CHAOS env var).
TCP serving defaults to the readiness-driven poll front-end (pipelined
requests, bounded in-flight window, stall/idle timeouts, slow-reader
disconnects); `--front-end threaded` restores thread-per-connection.
`serve --cache-dir DIR` journals every cached result to DIR and
recovers it on restart (crash-safe; see DESIGN.md §10). The directory
must already exist and be writable. `cache-inspect` scans a store
offline (reporting which entries carry proof certificates) and exits 1
if any frame is corrupt. `certify --emit-proof` writes a verifiable
wire certificate (DESIGN.md §11); `checkproof` validates either a
textual proof or a wire certificate, autodetected by content.
`serve --peers` shards the cache across a static member list by
consistent hashing on the request fingerprint (DESIGN.md §14): a node
that does not own a request forwards it to the owner, so every distinct
computation happens exactly once cluster-wide, and `--sync-from`
warm-starts a cold node by shipping a peer's journal over `peer-sync`.
`router` is a shard-aware stateless front door over the same ring;
`cluster-status` polls each member's `stats` and tabulates the cluster
counters, per-node health and shard digests. `serve --replication N`
pushes every freshly computed result to the N-1 ring successors of its
owner; writes owed to a DOWN replica queue in a bounded hint journal
and are redelivered when it recovers. `repair` runs one round of
pairwise anti-entropy (digest compare + journal pull) across the
member list and exits 0 only when every shard digest converged.
";

/// A CLI failure, split along the exit-code convention: `Usage` exits 2
/// (bad invocation), `Analysis` exits 1 (the tool ran but the input
/// failed — parse error, rejected proof, and so on). Plain `String`
/// errors from option parsing convert to `Usage`.
enum CliError {
    Usage(String),
    Analysis(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Usage(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> CliError {
        CliError::Usage(msg.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(code) => code,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
        Err(CliError::Analysis(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<ExitCode, CliError> {
    let Some(cmd) = args.first() else {
        print!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "certify" => cmd_certify(rest),
        "prove" => cmd_prove(rest),
        "checkproof" => cmd_checkproof(rest),
        "run" => cmd_run(rest),
        "explore" => cmd_explore(rest),
        "leaktest" => cmd_leaktest(rest),
        "infer" => cmd_infer(rest),
        "flows" => cmd_flows(rest),
        "atomicity" => cmd_atomicity(rest),
        "lint" => cmd_lint(rest),
        "fig3" => cmd_fig3(rest),
        "serve" => cmd_serve(rest),
        "router" => cmd_router(rest),
        "cluster-status" => cmd_cluster_status(rest),
        "repair" => cmd_repair(rest),
        "cache-inspect" => cmd_cache_inspect(rest),
        "batch" => cmd_batch(rest),
        "gen" => cmd_gen(rest),
        "version" | "--version" | "-V" => {
            println!("secflow {}", env!("CARGO_PKG_VERSION"));
            Ok(ExitCode::SUCCESS)
        }
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`; try `secflow help`").into()),
    }
}

// ---- option parsing -----------------------------------------------------

struct Opts {
    file: Option<String>,
    flags: BTreeMap<String, Vec<String>>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut file = None;
    let mut flags: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            let takes_value = !matches!(
                name,
                "baseline" | "trace" | "dot" | "json" | "por" | "no-por"
            );
            if takes_value {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                flags.entry(name.to_string()).or_default().push(v.clone());
            } else {
                flags
                    .entry(name.to_string())
                    .or_default()
                    .push(String::new());
            }
        } else if file.is_none() {
            file = Some(a.clone());
        } else {
            return Err(format!("unexpected argument `{a}`"));
        }
        i += 1;
    }
    Ok(Opts { file, flags })
}

impl Opts {
    fn file(&self) -> Result<&str, String> {
        self.file.as_deref().ok_or_else(|| "missing <file>".into())
    }

    fn values(&self, name: &str) -> &[String] {
        self.flags.get(name).map_or(&[], Vec::as_slice)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

fn load_program(path: &str) -> Result<(Program, String), CliError> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot read `{path}`: {e}")))?;
    let program = parse(&source).map_err(|d| CliError::Analysis(d.render(&source)))?;
    Ok((program, source))
}

fn parse_pairs<'a>(
    program: &Program,
    specs: impl IntoIterator<Item = &'a String>,
) -> Result<Vec<(VarId, String)>, String> {
    let mut out = Vec::new();
    for spec in specs {
        let (name, value) = spec
            .split_once('=')
            .ok_or_else(|| format!("expected name=value, got `{spec}`"))?;
        let id = program
            .symbols
            .lookup(name)
            .ok_or_else(|| format!("`{name}` is not declared"))?;
        out.push((id, value.to_string()));
    }
    Ok(out)
}

// ---- lattice dispatch ---------------------------------------------------

/// Runs `f` with the scheme selected by `--lattice` (monomorphized per
/// scheme; classes arrive pre-parsed).
fn with_scheme<R>(
    opts: &Opts,
    f: impl FnOnce(&dyn SchemeOps) -> Result<R, String>,
) -> Result<R, String> {
    match opts.value("lattice").unwrap_or("two") {
        "two" => f(&TwoOps),
        spec => {
            let n = spec
                .strip_prefix("linear:")
                .and_then(|s| s.parse::<u32>().ok())
                .ok_or_else(|| format!("bad --lattice `{spec}` (two | linear:N)"))?;
            let scheme =
                LinearScheme::new(n).ok_or_else(|| "linear lattice needs N >= 1".to_string())?;
            f(&LinearOps { scheme })
        }
    }
}

/// Object-safe operations over a chosen scheme (the CLI needs exactly
/// these: build a binding, certify, prove, infer).
trait SchemeOps {
    fn certify_report(
        &self,
        program: &Program,
        source: &str,
        classes: &[(VarId, String)],
        default: Option<&str>,
        baseline: bool,
        emit_proof: Option<&str>,
    ) -> Result<(bool, String), String>;

    fn prove_report(
        &self,
        program: &Program,
        classes: &[(VarId, String)],
        default: Option<&str>,
        emit: Option<&str>,
    ) -> Result<(bool, String), String>;

    fn checkproof_report(
        &self,
        program: &Program,
        proof_text: &str,
    ) -> Result<(bool, String), String>;

    fn infer_report(
        &self,
        program: &Program,
        pins: &[(VarId, String)],
    ) -> Result<(bool, String), String>;
}

fn build_binding<S: Scheme>(
    program: &Program,
    scheme: &S,
    classes: &[(VarId, String)],
    default: Option<&str>,
    parse_class: impl Fn(&str) -> Result<S::Elem, String>,
) -> Result<StaticBinding<S::Elem>, String>
where
    S::Elem: Lattice,
{
    let base = match default {
        Some(c) => parse_class(c)?,
        None => scheme.low(),
    };
    let mut binding = StaticBinding::constant(&program.symbols, scheme, base);
    for (id, class) in classes {
        binding.set(*id, parse_class(class)?);
    }
    Ok(binding)
}

#[allow(clippy::too_many_arguments)]
fn certify_impl<S: Scheme>(
    program: &Program,
    source: &str,
    scheme: &S,
    lattice_desc: &str,
    classes: &[(VarId, String)],
    default: Option<&str>,
    baseline: bool,
    emit_proof: Option<&str>,
    parse_class: impl Fn(&str) -> Result<S::Elem, String>,
    show_class: impl Fn(&S::Elem) -> String,
) -> Result<(bool, String), String>
where
    S::Elem: Lattice + Display,
{
    if emit_proof.is_some() && baseline {
        return Err(
            "--emit-proof needs the CFM flow logic; the Denning baseline has no proof".to_string(),
        );
    }
    let binding = build_binding(program, scheme, classes, default, parse_class)?;
    let report = if baseline {
        denning_certify(program, &binding)
    } else {
        certify(program, &binding)
    };
    let mut out = String::new();
    out.push_str(&binding.render(program));
    out.push_str(&report.render(source));
    if let Some(path) = emit_proof {
        if report.certified() {
            // Theorem 1 guarantees a proof exists for any CFM-certified
            // program; a prover failure here is a bug, not bad input.
            let proof = prove(program, &binding, Extended::Nil, Extended::Nil)
                .map_err(|e| format!("Theorem 1 prover failed on a certified program: {e}"))?;
            let cert = emit_certificate(&proof, &program.symbols, lattice_desc, source, &|l| {
                show_class(l)
            });
            std::fs::write(path, &cert.text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            out.push_str(&format!(
                "certificate written to {path} ({} nodes, digest sha256:{})\n",
                cert.nodes, cert.digest
            ));
        } else {
            out.push_str("no certificate: the program was not certified\n");
        }
    }
    Ok((report.certified(), out))
}

#[allow(clippy::too_many_arguments)]
fn prove_impl<S: Scheme>(
    program: &Program,
    scheme: &S,
    classes: &[(VarId, String)],
    default: Option<&str>,
    emit: Option<&str>,
    parse_class: impl Fn(&str) -> Result<S::Elem, String>,
    show_class: impl Fn(&S::Elem) -> String,
) -> Result<(bool, String), String>
where
    S::Elem: Lattice + Display,
{
    let binding = build_binding(program, scheme, classes, default, parse_class)?;
    match prove(program, &binding, Extended::Nil, Extended::Nil) {
        Ok(proof) => {
            check_proof(&program.body, &proof).map_err(|e| e.to_string())?;
            let mut out = format!(
                "completely invariant flow proof found ({} nodes):\n{}",
                proof.size(),
                render_proof(&proof, &program.symbols)
            );
            if let Some(path) = emit {
                let text = write_proof(&proof, &program.symbols, &|l| show_class(l));
                std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
                out.push_str(&format!("proof written to {path}\n"));
            }
            Ok((true, out))
        }
        Err(e) => Ok((false, format!("no completely invariant proof: {e}\n"))),
    }
}

fn checkproof_impl<L: Lattice + Display>(
    program: &Program,
    proof_text: &str,
    parse_lit: impl Fn(&str) -> Option<L>,
) -> Result<(bool, String), String> {
    // A proof that does not even parse is still a rejected proof (exit
    // 1, analysis failure), not a CLI usage error.
    let proof = match parse_proof(proof_text, &program.symbols, &|s| parse_lit(s)) {
        Ok(proof) => proof,
        Err(e) => return Ok((false, format!("proof REJECTED: {e}\n"))),
    };
    match check_proof(&program.body, &proof) {
        Ok(()) => Ok((true, format!("proof checks ({} nodes)\n", proof.size()))),
        Err(e) => Ok((false, format!("proof REJECTED: {e}\n"))),
    }
}

fn infer_impl<S: Scheme>(
    program: &Program,
    scheme: &S,
    pins: &[(VarId, String)],
    parse_class: impl Fn(&str) -> Result<S::Elem, String>,
) -> Result<(bool, String), String>
where
    S::Elem: Lattice + Display,
{
    let mut parsed = Vec::new();
    for (id, c) in pins {
        parsed.push((*id, parse_class(c)?));
    }
    match infer_binding(program, scheme, parsed) {
        Ok(binding) => Ok((
            true,
            format!("least certifying binding:\n{}", binding.render(program)),
        )),
        Err(unsat) => Ok((
            false,
            format!(
                "no certifying binding: {} is pinned at {} but needs {}\nflow chain: {}\n",
                program.symbols.name(unsat.var),
                unsat.pinned,
                unsat.required,
                unsat.render_path(program)
            ),
        )),
    }
}

struct TwoOps;

fn parse_two(s: &str) -> Result<TwoPoint, String> {
    match s.to_ascii_lowercase().as_str() {
        "low" | "l" => Ok(TwoPoint::Low),
        "high" | "h" => Ok(TwoPoint::High),
        other => Err(format!("unknown class `{other}` (low | high)")),
    }
}

impl SchemeOps for TwoOps {
    fn certify_report(
        &self,
        program: &Program,
        source: &str,
        classes: &[(VarId, String)],
        default: Option<&str>,
        baseline: bool,
        emit_proof: Option<&str>,
    ) -> Result<(bool, String), String> {
        certify_impl(
            program,
            source,
            &TwoPointScheme,
            "two",
            classes,
            default,
            baseline,
            emit_proof,
            parse_two,
            show_two_class,
        )
    }

    fn prove_report(
        &self,
        program: &Program,
        classes: &[(VarId, String)],
        default: Option<&str>,
        emit: Option<&str>,
    ) -> Result<(bool, String), String> {
        prove_impl(
            program,
            &TwoPointScheme,
            classes,
            default,
            emit,
            parse_two,
            |l| match l {
                TwoPoint::Low => "low".to_string(),
                TwoPoint::High => "high".to_string(),
            },
        )
    }

    fn checkproof_report(
        &self,
        program: &Program,
        proof_text: &str,
    ) -> Result<(bool, String), String> {
        checkproof_impl(program, proof_text, |s| parse_two(s).ok())
    }

    fn infer_report(
        &self,
        program: &Program,
        pins: &[(VarId, String)],
    ) -> Result<(bool, String), String> {
        infer_impl(program, &TwoPointScheme, pins, parse_two)
    }
}

struct LinearOps {
    scheme: LinearScheme,
}

impl LinearOps {
    fn parse(&self, s: &str) -> Result<Linear, String> {
        let k: u32 = s
            .trim_start_matches(['L', 'l'])
            .parse()
            .map_err(|_| format!("unknown class `{s}` (0..{})", self.scheme.levels() - 1))?;
        self.scheme
            .level(k)
            .ok_or_else(|| format!("level {k} out of range (0..{})", self.scheme.levels() - 1))
    }
}

impl SchemeOps for LinearOps {
    fn certify_report(
        &self,
        program: &Program,
        source: &str,
        classes: &[(VarId, String)],
        default: Option<&str>,
        baseline: bool,
        emit_proof: Option<&str>,
    ) -> Result<(bool, String), String> {
        certify_impl(
            program,
            source,
            &self.scheme,
            &format!("linear:{}", self.scheme.levels()),
            classes,
            default,
            baseline,
            emit_proof,
            |s| self.parse(s),
            show_linear_class,
        )
    }

    fn prove_report(
        &self,
        program: &Program,
        classes: &[(VarId, String)],
        default: Option<&str>,
        emit: Option<&str>,
    ) -> Result<(bool, String), String> {
        prove_impl(
            program,
            &self.scheme,
            classes,
            default,
            emit,
            |s| self.parse(s),
            |l| l.0.to_string(),
        )
    }

    fn checkproof_report(
        &self,
        program: &Program,
        proof_text: &str,
    ) -> Result<(bool, String), String> {
        checkproof_impl(program, proof_text, |s| self.parse(s).ok())
    }

    fn infer_report(
        &self,
        program: &Program,
        pins: &[(VarId, String)],
    ) -> Result<(bool, String), String> {
        infer_impl(program, &self.scheme, pins, |s| self.parse(s))
    }
}

// ---- commands -----------------------------------------------------------

fn cmd_certify(args: &[String]) -> Result<ExitCode, CliError> {
    let opts = parse_opts(args)?;
    let (program, source) = load_program(opts.file()?)?;
    let classes = parse_pairs(&program, opts.values("class"))?;
    let (ok, report) = with_scheme(&opts, |ops| {
        ops.certify_report(
            &program,
            &source,
            &classes,
            opts.value("default"),
            opts.has("baseline"),
            opts.value("emit-proof"),
        )
    })?;
    print!("{report}");
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_prove(args: &[String]) -> Result<ExitCode, CliError> {
    let opts = parse_opts(args)?;
    let (program, _) = load_program(opts.file()?)?;
    let classes = parse_pairs(&program, opts.values("class"))?;
    let (ok, report) = with_scheme(&opts, |ops| {
        ops.prove_report(
            &program,
            &classes,
            opts.value("default"),
            opts.value("emit"),
        )
    })?;
    print!("{report}");
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_checkproof(args: &[String]) -> Result<ExitCode, CliError> {
    let opts = parse_opts(args)?;
    let (program, source) = load_program(opts.file()?)?;
    let proof_path = opts.value("proof").ok_or("missing --proof <file>")?;
    let proof_text = std::fs::read_to_string(proof_path)
        .map_err(|e| format!("cannot read `{proof_path}`: {e}"))?;
    // Wire certificates are JSON objects; the legacy textual proof
    // format never starts with `{`. The certificate names its own
    // lattice, so --lattice is not consulted on this path.
    if proof_text.trim_start().starts_with('{') {
        return Ok(match validate_certificate(&source, &proof_text) {
            Ok(summary) => {
                if opts.has("json") {
                    println!(
                        "{}",
                        Json::Obj(vec![
                            ("valid".to_string(), Json::Bool(true)),
                            ("proof_digest".to_string(), Json::Str(summary.digest)),
                            ("proof_nodes".to_string(), Json::Num(summary.nodes as f64)),
                            ("lattice".to_string(), Json::Str(summary.lattice)),
                        ])
                    );
                } else {
                    println!(
                        "certificate checks ({} nodes, lattice {})\ndigest sha256:{}",
                        summary.nodes, summary.lattice, summary.digest
                    );
                }
                ExitCode::SUCCESS
            }
            Err(err) => {
                if opts.has("json") {
                    println!(
                        "{}",
                        Json::Obj(vec![
                            ("valid".to_string(), Json::Bool(false)),
                            (
                                "reason".to_string(),
                                Json::Obj(vec![
                                    ("stage".to_string(), Json::Str(err.stage.to_string())),
                                    ("message".to_string(), Json::Str(err.message)),
                                ]),
                            ),
                        ])
                    );
                } else {
                    println!(
                        "certificate REJECTED at stage `{}`: {}",
                        err.stage, err.message
                    );
                }
                ExitCode::FAILURE
            }
        });
    }
    let (ok, report) = with_scheme(&opts, |ops| ops.checkproof_report(&program, &proof_text))?;
    if opts.has("json") {
        println!(
            "{}",
            Json::Obj(vec![
                ("valid".to_string(), Json::Bool(ok)),
                (
                    "report".to_string(),
                    Json::Str(report.trim_end().to_string())
                ),
            ])
        );
    } else {
        print!("{report}");
    }
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn parse_inputs(program: &Program, opts: &Opts) -> Result<Vec<(VarId, i64)>, String> {
    parse_pairs(program, opts.values("input"))?
        .into_iter()
        .map(|(id, v)| {
            v.parse::<i64>()
                .map(|n| (id, n))
                .map_err(|_| format!("bad integer `{v}`"))
        })
        .collect()
}

fn cmd_run(args: &[String]) -> Result<ExitCode, CliError> {
    let opts = parse_opts(args)?;
    let (program, _) = load_program(opts.file()?)?;
    let inputs = parse_inputs(&program, &opts)?;
    let fuel: usize = opts.value("fuel").map_or(Ok(1_000_000), |v| {
        v.parse().map_err(|_| "bad --fuel".to_string())
    })?;
    let mut machine = Machine::with_inputs(&program, &inputs);
    let trace = match opts.value("seed") {
        Some(seed) => {
            let seed: u64 = seed.parse().map_err(|_| "bad --seed")?;
            run_traced(&mut machine, &mut RandomSched::new(seed), fuel)
        }
        None => run_traced(&mut machine, &mut RoundRobin::new(), fuel),
    };
    if opts.has("trace") {
        print!("{}", trace.render(&program));
    }
    println!("outcome: {:?}", trace.outcome);
    for (id, info) in program.symbols.iter() {
        println!("{} = {}", info.name, machine.get(id));
    }
    Ok(if trace.outcome.terminated() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_explore(args: &[String]) -> Result<ExitCode, CliError> {
    let opts = parse_opts(args)?;
    let (program, _) = load_program(opts.file()?)?;
    let inputs = parse_inputs(&program, &opts)?;
    let mut limits = ExploreLimits::default();
    if let Some(ms) = opts.value("max-states") {
        limits.max_states = ms.parse().map_err(|_| "bad --max-states")?;
    }
    // Partial-order reduction is on by default; `--no-por` restores the
    // full interleaving search (e.g. to measure the reduction).
    if opts.has("no-por") {
        limits = limits.without_por();
    }
    let timeout_ms: u64 = opts
        .value("timeout-ms")
        .map_or(Ok(0), |v| v.parse().map_err(|_| "bad --timeout-ms"))?;
    let threads: usize = opts
        .value("threads")
        .map_or(Ok(1), |v| v.parse().map_err(|_| "bad --threads"))?;
    let token = secflow_server::CancelToken::after_ms(timeout_ms);
    let stop = || token.expired();
    let report = if threads > 1 {
        pexplore_with(&program, &inputs, limits, threads, &stop)
    } else {
        explore_with(&program, &inputs, limits, &stop)
    };
    if report.cancelled {
        println!(
            "TIMEOUT after {timeout_ms} ms: {} states explored (partial results below)",
            report.states
        );
    }
    println!(
        "states: {}   pruned: {}   terminal outcomes: {}   deadlocks: {}   faults: {}   truncated: {}",
        report.states,
        report.states_pruned,
        report.outcomes.len(),
        report.deadlocks,
        report.faults,
        report.truncated
    );
    let names: Vec<&str> = program
        .symbols
        .iter()
        .map(|(_, v)| v.name.as_str())
        .collect();
    for store in report.outcomes.iter().take(20) {
        let pairs: Vec<String> = names
            .iter()
            .zip(store)
            .map(|(n, v)| format!("{n}={v}"))
            .collect();
        println!("  {}", pairs.join(" "));
    }
    if report.outcomes.len() > 20 {
        println!("  ... {} more", report.outcomes.len() - 20);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_leaktest(args: &[String]) -> Result<ExitCode, CliError> {
    let opts = parse_opts(args)?;
    let (program, _) = load_program(opts.file()?)?;
    let secret_name = opts.value("secret").ok_or("missing --secret")?;
    let secret = program
        .symbols
        .lookup(secret_name)
        .ok_or_else(|| format!("`{secret_name}` is not declared"))?;
    let low_vars: Vec<VarId> = match opts.value("observe") {
        Some(list) => list
            .split(',')
            .map(|n| {
                program
                    .symbols
                    .lookup(n.trim())
                    .ok_or_else(|| format!("`{n}` is not declared"))
            })
            .collect::<Result<_, _>>()?,
        None => program
            .symbols
            .data_vars()
            .into_iter()
            .filter(|v| *v != secret)
            .collect(),
    };
    let values: Vec<i64> = match opts.value("values") {
        Some(list) => list
            .split(',')
            .map(|v| v.trim().parse().map_err(|_| format!("bad value `{v}`")))
            .collect::<Result<_, _>>()?,
        None => vec![0, 1],
    };
    let variants: Vec<Vec<(VarId, i64)>> = values.iter().map(|v| vec![(secret, *v)]).collect();
    let report = check_noninterference(&program, &variants, &low_vars, ExploreLimits::default());
    if report.truncated {
        println!("warning: exploration truncated; verdict is a lower bound");
    }
    match report.witness {
        Some(w) => {
            println!("INTERFERES: secret `{secret_name}` is observable");
            println!(
                "  {secret_name}={} -> outcomes {:?} deadlock={} fault={}",
                w.inputs_a[0].1,
                w.observed_a.low_outcomes,
                w.observed_a.can_deadlock,
                w.observed_a.can_fault
            );
            println!(
                "  {secret_name}={} -> outcomes {:?} deadlock={} fault={}",
                w.inputs_b[0].1,
                w.observed_b.low_outcomes,
                w.observed_b.can_deadlock,
                w.observed_b.can_fault
            );
            Ok(ExitCode::FAILURE)
        }
        None => {
            println!(
                "no interference observed across {} secret values",
                values.len()
            );
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn cmd_infer(args: &[String]) -> Result<ExitCode, CliError> {
    let opts = parse_opts(args)?;
    let (program, _) = load_program(opts.file()?)?;
    let pins = parse_pairs(&program, opts.values("pin"))?;
    let (ok, report) = with_scheme(&opts, |ops| ops.infer_report(&program, &pins))?;
    print!("{report}");
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_flows(args: &[String]) -> Result<ExitCode, CliError> {
    let opts = parse_opts(args)?;
    let (program, _) = load_program(opts.file()?)?;
    let graph = FlowGraph::of(&program);
    if opts.has("dot") {
        let classes = parse_pairs(&program, opts.values("class"))?;
        if classes.is_empty() && opts.value("default").is_none() {
            print!("{}", graph.to_dot::<TwoPoint>(&program, None));
        } else {
            let binding = build_binding(
                &program,
                &TwoPointScheme,
                &classes,
                opts.value("default"),
                parse_two,
            )?;
            print!("{}", graph.to_dot(&program, Some(&binding)));
        }
    } else {
        print!("{}", graph.render(&program));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_atomicity(args: &[String]) -> Result<ExitCode, CliError> {
    let opts = parse_opts(args)?;
    let (program, source) = load_program(opts.file()?)?;
    let report = check_atomicity(&program);
    print!("{}", report.render(&source));
    Ok(if report.single_reference() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_lint(args: &[String]) -> Result<ExitCode, CliError> {
    let opts = parse_opts(args)?;
    let target = opts.file()?.to_string();
    let json = opts.has("json");
    let threads: usize = opts
        .value("threads")
        .map_or(Ok(1), |v| v.parse().map_err(|_| "bad --threads"))?;
    let path = std::path::Path::new(&target);
    let files: Vec<PathBuf> = if path.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("cannot read `{target}`: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "sf"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("no *.sf files in `{target}`").into());
        }
        files
    } else {
        vec![path.to_path_buf()]
    };

    let (mut errors, mut warnings, mut infos) = (0usize, 0usize, 0usize);
    for file in &files {
        let display = file.display().to_string();
        let source = std::fs::read_to_string(file)
            .map_err(|e| CliError::Usage(format!("cannot read `{display}`: {e}")))?;
        // A parse error is itself a diagnostic: report it through the
        // same renderer instead of aborting the whole lint run.
        let report = match parse(&source) {
            Ok(program) => secflow_analyze::analyze_threads(&program, threads, &|| false),
            Err(d) => AnalysisReport::from_diags(vec![Diag::from(&d)]),
        };
        errors += report.count(Severity::Error);
        warnings += report.count(Severity::Warning);
        infos += report.count(Severity::Info);
        if json {
            print!("{}", report.to_json_lines(Some(&display), &source));
        } else if !report.clean() {
            println!("{display}:");
            print!("{}", report.render(&source));
        }
    }
    if !json {
        println!(
            "{} file(s) linted: {errors} error(s), {warnings} warning(s), {infos} info(s)",
            files.len()
        );
    }
    Ok(if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn server_config(opts: &Opts) -> Result<secflow_server::ServerConfig, String> {
    let mut cfg = secflow_server::ServerConfig::default();
    if let Some(v) = opts.value("workers") {
        cfg.workers = v.parse().map_err(|_| "bad --workers")?;
    }
    if let Some(v) = opts.value("queue") {
        cfg.queue_capacity = v.parse().map_err(|_| "bad --queue")?;
    }
    if let Some(v) = opts.value("cache") {
        cfg.cache_capacity = v.parse().map_err(|_| "bad --cache")?;
    }
    if let Some(v) = opts.value("max-fuel") {
        cfg.limits.max_fuel = v.parse().map_err(|_| "bad --max-fuel")?;
    }
    if let Some(v) = opts.value("default-timeout-ms") {
        cfg.limits.default_timeout_ms = v.parse().map_err(|_| "bad --default-timeout-ms")?;
    }
    if let Some(v) = opts.value("max-line-bytes") {
        cfg.max_line_bytes = v.parse().map_err(|_| "bad --max-line-bytes")?;
    }
    if let Some(v) = opts.value("max-threads") {
        cfg.limits.max_threads = v.parse().map_err(|_| "bad --max-threads")?;
    }
    if let Some(v) = opts.value("front-end") {
        cfg.front_end = match v {
            "poll" => secflow_server::FrontEnd::Poll,
            "threaded" => secflow_server::FrontEnd::Threaded,
            _ => return Err("bad --front-end (poll | threaded)".to_string()),
        };
    }
    if let Some(v) = opts.value("pipeline-window") {
        let window: usize = v.parse().map_err(|_| "bad --pipeline-window")?;
        if window == 0 {
            return Err("bad --pipeline-window (must be >= 1)".to_string());
        }
        cfg.pipeline_window = window;
    }
    if let Some(v) = opts.value("write-high-water") {
        cfg.write_high_water = v.parse().map_err(|_| "bad --write-high-water")?;
    }
    if let Some(v) = opts.value("idle-timeout-ms") {
        cfg.idle_timeout_ms = v.parse().map_err(|_| "bad --idle-timeout-ms")?;
    }
    if let Some(v) = opts.value("stall-timeout-ms") {
        cfg.stall_timeout_ms = v.parse().map_err(|_| "bad --stall-timeout-ms")?;
    }
    // --chaos takes a fault-plan spec; SECFLOW_CHAOS is the env fallback
    // so CI can inject faults without changing invocations.
    let chaos_spec = opts
        .value("chaos")
        .map(str::to_string)
        .or_else(|| std::env::var("SECFLOW_CHAOS").ok());
    if let Some(spec) = chaos_spec {
        let plan =
            secflow_server::FaultPlan::parse(&spec).map_err(|e| format!("bad --chaos: {e}"))?;
        cfg.chaos = Some(std::sync::Arc::new(plan));
    }
    if let Some(dir) = opts.value("cache-dir") {
        let mut pcfg = secflow_server::PersistConfig::new(validated_cache_dir(dir)?);
        if let Some(v) = opts.value("journal-max-bytes") {
            pcfg.journal_max_bytes = v.parse().map_err(|_| "bad --journal-max-bytes")?;
        }
        if let Some(v) = opts.value("fsync") {
            pcfg.fsync = secflow_server::FsyncMode::parse(v).map_err(|e| format!("bad {e}"))?;
        }
        cfg.persist = Some(pcfg);
    } else if opts.has("journal-max-bytes") || opts.has("fsync") {
        return Err("--journal-max-bytes and --fsync require --cache-dir".to_string());
    }
    // `--sync-from` alone (no --peers) is a standalone warm start: the
    // node ships a peer's journal at boot but joins no ring.
    let peers = peer_list(opts)?;
    if peers.is_some() || opts.has("sync-from") {
        let mut cluster = secflow_server::ClusterConfig::new(&peers.unwrap_or_default());
        cluster.self_addr = opts.value("advertise").map(str::to_string);
        if let Some(v) = opts.value("max-hops") {
            cluster.max_hops = v.parse().map_err(|_| "bad --max-hops")?;
        }
        if let Some(v) = opts.value("peer-timeout-ms") {
            let ms: u64 = v.parse().map_err(|_| "bad --peer-timeout-ms")?;
            if ms == 0 {
                return Err("bad --peer-timeout-ms (must be >= 1)".to_string());
            }
            cluster.peer_timeout_ms = ms;
        }
        if let Some(v) = opts.value("replication") {
            let rf: u64 = v.parse().map_err(|_| "bad --replication")?;
            if rf == 0 {
                return Err("bad --replication (must be >= 1)".to_string());
            }
            cluster.replication = rf;
        }
        cluster.sync_from = opts.value("sync-from").map(str::to_string);
        cfg.cluster = Some(cluster);
    } else if ["advertise", "max-hops", "peer-timeout-ms", "replication"]
        .iter()
        .any(|f| opts.has(f))
    {
        return Err(
            "--advertise, --max-hops, --peer-timeout-ms and --replication require --peers"
                .to_string(),
        );
    }
    Ok(cfg)
}

/// Collects `--peers` (repeatable, comma-separated) into one address
/// list; `Ok(None)` when the flag is absent.
fn peer_list(opts: &Opts) -> Result<Option<Vec<String>>, String> {
    if !opts.has("peers") {
        return Ok(None);
    }
    let peers: Vec<String> = opts
        .values("peers")
        .iter()
        .flat_map(|spec| spec.split(','))
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect();
    if peers.is_empty() {
        return Err("--peers needs at least one HOST:PORT".to_string());
    }
    Ok(Some(peers))
}

/// Validates a `--cache-dir` value up front: the directory must already
/// exist (a typo'd path must not silently create an empty store
/// elsewhere) and be writable, probed by opening the journal for
/// append. Failures are structured usage errors (exit 2), never panics.
fn validated_cache_dir(dir: &str) -> Result<PathBuf, String> {
    let path = PathBuf::from(dir);
    if !path.is_dir() {
        return Err(format!(
            "--cache-dir `{dir}` is not an existing directory (create it first)"
        ));
    }
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path.join(secflow_server::persist::JOURNAL_FILE))
        .map_err(|e| format!("--cache-dir `{dir}` is not writable: {e}"))?;
    Ok(path)
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, CliError> {
    let opts = parse_opts(args)?;
    let cfg = server_config(&opts)?;
    if let Some(cluster) = cfg.cluster.as_ref().filter(|c| !c.peers.is_empty()) {
        // A sharded node must know its own shard; a router (self_addr
        // unset) has its own subcommand with clearer semantics.
        let Some(me) = &cluster.self_addr else {
            return Err(
                "serve --peers needs --advertise HOST:PORT (or use `secflow router`)"
                    .to_string()
                    .into(),
            );
        };
        if !cluster.peers.contains(me) {
            return Err(format!("--advertise `{me}` is not in the --peers list").into());
        }
    }
    match opts.value("addr") {
        Some(addr) => {
            let (workers, queue, cache) = (cfg.workers, cfg.queue_capacity, cfg.cache_capacity);
            let chaos = cfg.chaos.is_some();
            let shard = cfg
                .cluster
                .as_ref()
                .map(|c| {
                    format!(
                        ", shard {} of {}",
                        c.self_addr.as_deref().unwrap_or("?"),
                        c.peers.len()
                    )
                })
                .unwrap_or_default();
            let server =
                secflow_server::serve_tcp(addr, cfg).map_err(|e| format!("cannot bind: {e}"))?;
            eprintln!(
                "secflow-server listening on {} ({workers} workers, queue {queue}, cache {cache}{shard}{})",
                server.local_addr(),
                if chaos { ", CHAOS ON" } else { "" }
            );
            server
                .join()
                .map_err(|_| "server thread panicked".to_string())?;
        }
        None => {
            secflow_server::serve_stdio(cfg).map_err(|e| format!("io error: {e}"))?;
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// `secflow router`: a stateless shard-aware front door. Reuses the
/// whole serve stack (poll front-end, pool, cache) with a cluster
/// config that owns no shard, so every request is forwarded to its
/// ring owner — and re-routed to a successor when the owner is down.
fn cmd_router(args: &[String]) -> Result<ExitCode, CliError> {
    let opts = parse_opts(args)?;
    if opts.has("advertise") || opts.has("sync-from") {
        return Err("a router owns no shard; --advertise/--sync-from are for `serve`".into());
    }
    let cfg = server_config(&opts)?;
    if cfg.cluster.is_none() {
        return Err("router needs --peers HOST:PORT,HOST:PORT,...".into());
    }
    let addr = opts.value("addr").ok_or("router needs --addr HOST:PORT")?;
    let peers = cfg.cluster.as_ref().map_or(0, |c| c.peers.len());
    let server = secflow_server::serve_tcp(addr, cfg).map_err(|e| format!("cannot bind: {e}"))?;
    eprintln!(
        "secflow-router listening on {} (routing {peers} peers)",
        server.local_addr()
    );
    server
        .join()
        .map_err(|_| "router thread panicked".to_string())?;
    Ok(ExitCode::SUCCESS)
}

/// `secflow cluster-status`: polls every `--peers` member's `stats`
/// op and tabulates the cluster counters. Exit 0 when every member
/// answered, 1 when any was unreachable (so health checks can gate on
/// it), 2 on bad usage.
fn cmd_cluster_status(args: &[String]) -> Result<ExitCode, CliError> {
    use secflow_server::Json;
    let opts = parse_opts(args)?;
    let peers = peer_list(&opts)?.ok_or("cluster-status needs --peers HOST:PORT,...")?;
    let timeout_ms: u64 = opts.value("peer-timeout-ms").map_or(Ok(2_000), |v| {
        v.parse().map_err(|_| "bad --peer-timeout-ms")
    })?;
    let policy = secflow_server::RetryPolicy {
        budget: 2,
        io_timeout: Some(std::time::Duration::from_millis(timeout_ms.max(1))),
        ..secflow_server::RetryPolicy::default()
    };
    let req = secflow_server::Request::new(secflow_server::Op::Stats, "");
    let json = opts.has("json");
    let mut down = 0usize;
    if !json {
        println!(
            "{:<22} {:>8} {:>8} {:>9} {:>9} {:>6} {:>6} {:>17}",
            "NODE", "REQS", "HITS", "FORWARDS", "FWD_HITS", "RING", "HINTS", "DIGEST"
        );
    }
    for peer in &peers {
        let reply = secflow_server::RemoteClient::new(peer, policy).call(&req);
        match reply.ok().and_then(|line| Json::parse(&line).ok()) {
            Some(stats) => {
                let n = |v: &Json, field: &str| v.get(field).and_then(Json::as_u64).unwrap_or(0);
                let cluster = stats.get("cluster").cloned().unwrap_or(Json::Obj(vec![]));
                if json {
                    // Surface the healing fields at the top level so
                    // harnesses can assert convergence without digging
                    // through the whole stats object (still attached).
                    println!(
                        "{}",
                        Json::Obj(vec![
                            ("node".to_string(), Json::Str(peer.clone())),
                            ("up".to_string(), Json::Bool(true)),
                            (
                                "shard_digest".to_string(),
                                cluster
                                    .get("shard_digest")
                                    .cloned()
                                    .unwrap_or(Json::Str(String::new())),
                            ),
                            (
                                "hints_pending".to_string(),
                                cluster
                                    .get("hints_pending")
                                    .cloned()
                                    .unwrap_or(Json::Num(0.0)),
                            ),
                            (
                                "peers".to_string(),
                                cluster.get("peers").cloned().unwrap_or(Json::Arr(vec![])),
                            ),
                            ("stats".to_string(), stats),
                        ])
                    );
                } else {
                    println!(
                        "{:<22} {:>8} {:>8} {:>9} {:>9} {:>6} {:>6} {:>17}",
                        peer,
                        n(&stats, "requests"),
                        n(&stats, "cache_hits"),
                        n(&cluster, "forwards"),
                        n(&cluster, "forward_hits"),
                        n(&cluster, "hash_ring_size"),
                        n(&cluster, "hints_pending"),
                        cluster
                            .get("shard_digest")
                            .and_then(Json::as_str)
                            .unwrap_or("-"),
                    );
                }
            }
            None => {
                down += 1;
                if json {
                    println!(
                        "{}",
                        Json::Obj(vec![
                            ("node".to_string(), Json::Str(peer.clone())),
                            ("up".to_string(), Json::Bool(false)),
                        ])
                    );
                } else {
                    println!("{peer:<22} DOWN");
                }
            }
        }
    }
    Ok(if down == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `secflow repair`: one round of pairwise anti-entropy across the
/// member list. Every node is told to `repair` against every other
/// node (digest compare, journal pull on mismatch); afterwards each
/// node's shard digest is read back over `ping` and the command exits
/// 0 only when every node answered and all digests converged. Because
/// each pull installs the verified union of both caches, one
/// sequential pass converges the whole cluster.
fn cmd_repair(args: &[String]) -> Result<ExitCode, CliError> {
    use secflow_server::Json;
    let opts = parse_opts(args)?;
    let peers = peer_list(&opts)?.ok_or("repair needs --peers HOST:PORT,...")?;
    if peers.len() < 2 {
        return Err("repair needs at least two --peers".into());
    }
    let timeout_ms: u64 = opts.value("peer-timeout-ms").map_or(Ok(5_000), |v| {
        v.parse().map_err(|_| "bad --peer-timeout-ms")
    })?;
    let policy = secflow_server::RetryPolicy {
        budget: 2,
        io_timeout: Some(std::time::Duration::from_millis(timeout_ms.max(1))),
        ..secflow_server::RetryPolicy::default()
    };
    let json = opts.has("json");
    let mut failures = 0usize;
    let mut installed_total = 0u64;
    for node in &peers {
        for peer in peers.iter().filter(|p| *p != node) {
            let mut req = secflow_server::Request::new(secflow_server::Op::Repair, "");
            req.peer = Some(peer.clone());
            let reply = secflow_server::RemoteClient::new(node, policy).call(&req);
            match reply.ok().and_then(|line| Json::parse(&line).ok()) {
                Some(v) if v.get("ok").and_then(Json::as_bool) == Some(true) => {
                    let installed = v.get("installed").and_then(Json::as_u64).unwrap_or(0);
                    installed_total += installed;
                    if json {
                        println!(
                            "{}",
                            Json::Obj(vec![
                                ("node".to_string(), Json::Str(node.clone())),
                                ("peer".to_string(), Json::Str(peer.clone())),
                                ("ok".to_string(), Json::Bool(true)),
                                ("installed".to_string(), Json::Num(installed as f64)),
                            ])
                        );
                    } else if installed > 0 {
                        println!("{node} <- {peer}: installed {installed}");
                    }
                }
                _ => {
                    failures += 1;
                    if json {
                        println!(
                            "{}",
                            Json::Obj(vec![
                                ("node".to_string(), Json::Str(node.clone())),
                                ("peer".to_string(), Json::Str(peer.clone())),
                                ("ok".to_string(), Json::Bool(false)),
                            ])
                        );
                    } else {
                        println!("{node} <- {peer}: FAILED");
                    }
                }
            }
        }
    }
    // Read back every node's digest; convergence is the whole point.
    let ping = secflow_server::Request::new(secflow_server::Op::Ping, "");
    let mut digests: Vec<String> = Vec::new();
    for node in &peers {
        let reply = secflow_server::RemoteClient::new(node, policy).call(&ping);
        match reply
            .ok()
            .and_then(|line| Json::parse(&line).ok())
            .and_then(|v| v.get("digest").and_then(Json::as_str).map(str::to_string))
        {
            Some(digest) => {
                if !json {
                    println!("{node}: digest {digest}");
                }
                digests.push(digest);
            }
            None => {
                failures += 1;
                if !json {
                    println!("{node}: UNREACHABLE");
                }
            }
        }
    }
    let converged =
        failures == 0 && digests.len() == peers.len() && digests.windows(2).all(|w| w[0] == w[1]);
    if json {
        println!(
            "{}",
            Json::Obj(vec![
                ("converged".to_string(), Json::Bool(converged)),
                ("nodes".to_string(), Json::Num(peers.len() as f64)),
                ("failures".to_string(), Json::Num(failures as f64)),
                ("installed".to_string(), Json::Num(installed_total as f64)),
            ])
        );
    } else {
        println!(
            "repair: {installed_total} installed, {failures} failure(s), converged: {converged}"
        );
    }
    Ok(if converged {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `secflow cache-inspect <dir>`: scans a durable store offline (no
/// lock, no mutation) and reports its contents. Exit 0 when every frame
/// is CRC-clean, 1 when corruption was skipped (analysis failure), 2 on
/// a missing/unreadable directory (usage error).
fn cmd_cache_inspect(args: &[String]) -> Result<ExitCode, CliError> {
    let opts = parse_opts(args)?;
    let dir = opts.file()?;
    let report = secflow_server::inspect_store(std::path::Path::new(dir))
        .map_err(|e| CliError::Usage(format!("cannot inspect `{dir}`: {e}")))?;
    if opts.has("json") {
        use secflow_server::Json;
        let n = |v: u64| Json::Num(v as f64);
        let obj = Json::Obj(vec![
            (
                "snapshot_entries".to_string(),
                n(report.snapshot_entries.len() as u64),
            ),
            (
                "journal_entries".to_string(),
                n(report.journal_entries.len() as u64),
            ),
            (
                "unique_entries".to_string(),
                n(report.unique_entries() as u64),
            ),
            ("cert_entries".to_string(), n(report.cert_entries() as u64)),
            ("frames_skipped".to_string(), n(report.frames_skipped)),
            ("snapshot_bytes".to_string(), n(report.snapshot_bytes)),
            ("journal_bytes".to_string(), n(report.journal_bytes)),
            ("tmp_present".to_string(), Json::Bool(report.tmp_present)),
            ("clean".to_string(), Json::Bool(report.clean())),
        ]);
        println!("{obj}");
    } else {
        print!("{}", secflow_server::render_report(&report));
    }
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_batch(args: &[String]) -> Result<ExitCode, CliError> {
    let opts = parse_opts(args)?;
    let dir = opts.file()?;
    let cfg = server_config(&opts)?;
    let mut classes = Vec::new();
    for spec in opts.values("class") {
        let (name, class) = spec
            .split_once('=')
            .ok_or_else(|| format!("expected name=CLASS, got `{spec}`"))?;
        classes.push((name.to_string(), class.to_string()));
    }
    let summary = match opts.value("remote") {
        // Remote mode: ship every file to a running server through the
        // retrying client instead of certifying in-process.
        Some(addr) => {
            let mut policy = secflow_server::RetryPolicy::default();
            if let Some(v) = opts.value("retries") {
                policy.budget = v.parse().map_err(|_| "bad --retries")?;
            }
            secflow_server::run_batch_remote(
                std::path::Path::new(dir),
                &classes,
                opts.value("default"),
                opts.value("lattice").unwrap_or("two"),
                addr,
                policy,
            )?
        }
        None => secflow_server::run_batch(
            std::path::Path::new(dir),
            &classes,
            opts.value("default"),
            opts.value("lattice").unwrap_or("two"),
            cfg,
        )?,
    };
    print!("{}", secflow_server::render_summary(&summary));
    Ok(if summary.errored == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Generates a synthetic workload program — a sequential assignment
/// chain (`--chain N`, parse/certify depth) or unordered dining
/// philosophers (`--philosophers N`, an interleaving-space bomb for
/// `explore`) — either as plain source or wrapped in a ready-to-send
/// JSON-lines request. The latter is what the CI timeout smoke pipes
/// into `secflow serve`.
fn cmd_gen(args: &[String]) -> Result<ExitCode, CliError> {
    let opts = parse_opts(args)?;
    let source = match (
        opts.value("chain"),
        opts.value("philosophers"),
        opts.value("indep"),
    ) {
        (Some(length), None, None) => {
            let length: usize = length.parse().map_err(|_| "bad --chain")?;
            let vars: usize = opts
                .value("vars")
                .map_or(Ok(8), |v| v.parse().map_err(|_| "bad --vars"))?;
            print_program(&secflow_workload::sequential_chain(length, vars))
        }
        (None, Some(n), None) => {
            let n: usize = n.parse().map_err(|_| "bad --philosophers")?;
            let meals: i64 = opts
                .value("meals")
                .map_or(Ok(1000), |v| v.parse().map_err(|_| "bad --meals"))?;
            print_program(&secflow_workload::dining_philosophers(n, meals, false))
        }
        (None, None, Some(n)) => {
            let n: usize = n.parse().map_err(|_| "bad --indep")?;
            let steps: usize = opts
                .value("steps")
                .map_or(Ok(4), |v| v.parse().map_err(|_| "bad --steps"))?;
            print_program(&secflow_workload::indep(n, steps))
        }
        _ => {
            return Err("pass exactly one of --chain N, --philosophers N or --indep N".into());
        }
    };
    match opts.value("request") {
        None => print!("{source}"),
        Some(op_name) => {
            let op = match op_name {
                "certify" => secflow_server::Op::Certify,
                "infer" => secflow_server::Op::Infer,
                "flows" => secflow_server::Op::Flows,
                "lint" => secflow_server::Op::Lint,
                "explore" => secflow_server::Op::Explore,
                other => return Err(format!("bad --request op `{other}`").into()),
            };
            let mut req = secflow_server::Request::new(op, source);
            if let Some(t) = opts.value("timeout-ms") {
                req.timeout_ms = Some(t.parse().map_err(|_| "bad --timeout-ms")?);
            }
            if op == secflow_server::Op::Explore {
                // Raise the state cap to the server's hard limit so a
                // deadline, not truncation, is what stops the search.
                req.max_states = Some(u64::MAX);
            }
            println!("{}", req.to_line());
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_fig3(args: &[String]) -> Result<ExitCode, CliError> {
    let opts = parse_opts(args)?;
    let x: i64 = opts
        .value("x")
        .map_or(Ok(0), |v| v.parse().map_err(|_| "bad --x".to_string()))?;
    let program = fig3_program();
    println!("--- Figure 3 (Reitman, SOSP 1979) ---");
    print!("{FIG3_SOURCE}");
    println!("--- certification under the baseline-gap binding ---");
    let binding = fig3_baseline_gap_binding(&program);
    print!("{}", binding.render(&program));
    let cfm = certify(&program, &binding);
    let base = denning_certify(&program, &binding);
    println!(
        "CFM:      {}",
        if cfm.certified() {
            "certified"
        } else {
            "REJECTED"
        }
    );
    println!(
        "Dennings: {}",
        if base.certified() {
            "certified"
        } else {
            "REJECTED"
        }
    );
    println!("--- execution with x = {x} ---");
    let mut machine = Machine::with_inputs(&program, &[(program.var("x"), x)]);
    let trace = run_traced(&mut machine, &mut RoundRobin::new(), 100_000);
    println!("outcome: {:?}", trace.outcome);
    println!("y = {} (x was {})", machine.get(program.var("y")), x);
    println!("--- pretty-printed AST round-trip ---");
    print!("{}", print_program(&program));
    Ok(ExitCode::SUCCESS)
}
