//! Component-wise products of two classification schemes.

use std::fmt;

use crate::traits::{Lattice, Scheme};

/// An element of the product of two lattices, ordered component-wise.
///
/// `(a1, b1) ≤ (a2, b2)` iff `a1 ≤ a2` and `b1 ≤ b2`; joins and meets are
/// taken per component. The product of two complete lattices is again a
/// complete lattice, so products compose freely.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Product<A, B>(pub A, pub B);

impl<A: Lattice, B: Lattice> Lattice for Product<A, B> {
    fn join(&self, other: &Self) -> Self {
        Product(self.0.join(&other.0), self.1.join(&other.1))
    }

    fn meet(&self, other: &Self) -> Self {
        Product(self.0.meet(&other.0), self.1.meet(&other.1))
    }

    fn leq(&self, other: &Self) -> bool {
        self.0.leq(&other.0) && self.1.leq(&other.1)
    }
}

impl<A: fmt::Display, B: fmt::Display> fmt::Display for Product<A, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.0, self.1)
    }
}

/// The product scheme of two schemes.
///
/// # Examples
///
/// ```
/// use secflow_lattice::{
///     Lattice, LinearScheme, Product, ProductScheme, Scheme, TwoPointScheme,
/// };
///
/// let s = ProductScheme::new(TwoPointScheme, LinearScheme::new(3).unwrap());
/// assert_eq!(s.len(), 6);
/// assert_eq!(s.low(), Product(s.left().low(), s.right().low()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProductScheme<SA, SB> {
    left: SA,
    right: SB,
}

impl<SA: Scheme, SB: Scheme> ProductScheme<SA, SB> {
    /// Creates the product of `left` and `right`.
    pub fn new(left: SA, right: SB) -> Self {
        ProductScheme { left, right }
    }

    /// The left component scheme.
    pub fn left(&self) -> &SA {
        &self.left
    }

    /// The right component scheme.
    pub fn right(&self) -> &SB {
        &self.right
    }
}

impl<SA: Scheme, SB: Scheme> Scheme for ProductScheme<SA, SB> {
    type Elem = Product<SA::Elem, SB::Elem>;

    fn low(&self) -> Self::Elem {
        Product(self.left.low(), self.right.low())
    }

    fn high(&self) -> Self::Elem {
        Product(self.left.high(), self.right.high())
    }

    fn elements(&self) -> Vec<Self::Elem> {
        let rights = self.right.elements();
        self.left
            .elements()
            .into_iter()
            .flat_map(|a| rights.iter().map(move |b| Product(a.clone(), b.clone())))
            .collect()
    }

    fn contains(&self, e: &Self::Elem) -> bool {
        self.left.contains(&e.0) && self.right.contains(&e.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{laws, Linear, LinearScheme, TwoPoint, TwoPointScheme};

    fn scheme() -> ProductScheme<TwoPointScheme, LinearScheme> {
        ProductScheme::new(TwoPointScheme, LinearScheme::new(3).unwrap())
    }

    #[test]
    fn satisfies_lattice_laws() {
        laws::assert_lattice_laws(&scheme());
    }

    #[test]
    fn order_is_componentwise() {
        let a = Product(TwoPoint::Low, Linear(2));
        let b = Product(TwoPoint::High, Linear(1));
        assert!(a.incomparable(&b));
        assert_eq!(a.join(&b), Product(TwoPoint::High, Linear(2)));
        assert_eq!(a.meet(&b), Product(TwoPoint::Low, Linear(1)));
    }

    #[test]
    fn carrier_size_is_product() {
        assert_eq!(scheme().len(), 6);
    }

    #[test]
    fn contains_requires_both_components() {
        let s = scheme();
        assert!(s.contains(&Product(TwoPoint::High, Linear(2))));
        assert!(!s.contains(&Product(TwoPoint::High, Linear(3))));
    }

    #[test]
    fn display_is_pair() {
        let p = Product(TwoPoint::Low, Linear(1));
        assert_eq!(p.to_string(), "(Low, L1)");
    }
}
