//! Powerset lattices of compartment categories, ordered by inclusion.

use std::fmt;

use crate::traits::{Lattice, Scheme};

/// A set of compartment categories, represented as a bitmask.
///
/// `CatSet` elements form the powerset lattice of up to 64 named categories
/// (e.g. `{NUCLEAR, CRYPTO}`): `join` is set union, `meet` is intersection,
/// and the order is inclusion. This is the "compartment" half of Denning's
/// lattice model of secure information flow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CatSet(pub u64);

impl CatSet {
    /// The empty category set (the `low` of every powerset scheme).
    pub const EMPTY: CatSet = CatSet(0);

    /// A singleton set containing category index `i` (`i < 64`).
    pub fn singleton(i: u32) -> Option<CatSet> {
        (i < 64).then(|| CatSet(1u64 << i))
    }

    /// `true` iff the set contains category index `i`.
    pub fn has(&self, i: u32) -> bool {
        i < 64 && self.0 & (1u64 << i) != 0
    }

    /// Number of categories in the set.
    pub fn cardinality(&self) -> u32 {
        self.0.count_ones()
    }

    /// Iterator over the category indices present in the set.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..64).filter(|i| self.has(*i))
    }
}

impl Lattice for CatSet {
    fn join(&self, other: &Self) -> Self {
        CatSet(self.0 | other.0)
    }

    fn meet(&self, other: &Self) -> Self {
        CatSet(self.0 & other.0)
    }

    fn leq(&self, other: &Self) -> bool {
        self.0 & !other.0 == 0
    }
}

impl fmt::Display for CatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for i in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "c{i}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// The powerset scheme over `n_categories` categories (`n_categories ≤ 64`).
///
/// # Examples
///
/// ```
/// use secflow_lattice::{CatSet, Lattice, PowersetScheme, Scheme};
///
/// let s = PowersetScheme::new(3).unwrap();
/// let a = CatSet::singleton(0).unwrap();
/// let b = CatSet::singleton(2).unwrap();
/// assert!(a.incomparable(&b));
/// assert_eq!(a.join(&b), CatSet(0b101));
/// assert_eq!(s.high(), CatSet(0b111));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PowersetScheme {
    n_categories: u32,
}

impl PowersetScheme {
    /// Creates a powerset scheme over `n_categories` categories.
    ///
    /// Returns `None` when `n_categories > 64` (the bitmask width). Note
    /// that enumerating [`Scheme::elements`] of a large scheme is
    /// exponential; law checks should use small instances.
    pub fn new(n_categories: u32) -> Option<Self> {
        (n_categories <= 64).then_some(PowersetScheme { n_categories })
    }

    /// Number of categories in the universe.
    pub fn n_categories(&self) -> u32 {
        self.n_categories
    }

    /// The full universe mask.
    fn universe(&self) -> u64 {
        if self.n_categories == 64 {
            u64::MAX
        } else {
            (1u64 << self.n_categories) - 1
        }
    }
}

impl Scheme for PowersetScheme {
    type Elem = CatSet;

    fn low(&self) -> CatSet {
        CatSet::EMPTY
    }

    fn high(&self) -> CatSet {
        CatSet(self.universe())
    }

    fn elements(&self) -> Vec<CatSet> {
        assert!(
            self.n_categories <= 20,
            "refusing to enumerate 2^{} powerset elements",
            self.n_categories
        );
        (0..(1u64 << self.n_categories)).map(CatSet).collect()
    }

    fn contains(&self, e: &CatSet) -> bool {
        e.0 & !self.universe() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    #[test]
    fn satisfies_lattice_laws() {
        for n in 0..=4 {
            laws::assert_lattice_laws(&PowersetScheme::new(n).unwrap());
        }
    }

    #[test]
    fn inclusion_order() {
        let a = CatSet(0b011);
        let b = CatSet(0b111);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
    }

    #[test]
    fn singletons_are_incomparable() {
        let a = CatSet::singleton(1).unwrap();
        let b = CatSet::singleton(3).unwrap();
        assert!(a.incomparable(&b));
        assert_eq!(a.meet(&b), CatSet::EMPTY);
    }

    #[test]
    fn singleton_bounds() {
        assert!(CatSet::singleton(63).is_some());
        assert!(CatSet::singleton(64).is_none());
    }

    #[test]
    fn cardinality_and_iter_agree() {
        let s = CatSet(0b1011);
        assert_eq!(s.cardinality(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 3]);
    }

    #[test]
    fn scheme_contains_checks_universe() {
        let s = PowersetScheme::new(2).unwrap();
        assert!(s.contains(&CatSet(0b11)));
        assert!(!s.contains(&CatSet(0b100)));
    }

    #[test]
    fn sixty_four_category_universe() {
        let s = PowersetScheme::new(64).unwrap();
        assert_eq!(s.high(), CatSet(u64::MAX));
        assert!(PowersetScheme::new(65).is_none());
    }

    #[test]
    fn display_lists_members() {
        assert_eq!(CatSet(0b101).to_string(), "{c0,c2}");
        assert_eq!(CatSet::EMPTY.to_string(), "{}");
    }
}
