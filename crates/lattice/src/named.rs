//! User-defined finite lattices from named elements and Hasse edges.
//!
//! Real policies rarely fit a chain or a powerset: an organization
//! declares classes like `public < internal < {finance, engineering} <
//! board`. [`NamedScheme::build`] takes the element names and the
//! covering relation, computes the reflexive-transitive closure, verifies
//! the result is a lattice (unique joins and meets everywhere, single
//! bottom and top), and precomputes the join/meet tables so elements stay
//! cheap `u16` handles.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::traits::{Lattice, Scheme};

/// An element of a [`NamedScheme`], a cheap handle into its tables.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Named {
    idx: u16,
    scheme: Arc<Tables>,
}

#[derive(Debug)]
struct Tables {
    names: Vec<String>,
    leq: Vec<bool>, // n×n row-major
    join: Vec<u16>, // n×n
    meet: Vec<u16>, // n×n
    bottom: u16,
    top: u16,
}

impl Tables {
    fn n(&self) -> usize {
        self.names.len()
    }

    fn leq_at(&self, a: u16, b: u16) -> bool {
        self.leq[a as usize * self.n() + b as usize]
    }
}

impl PartialEq for Tables {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self, other) || (self.names == other.names && self.leq == other.leq)
    }
}

impl Eq for Tables {}

impl Named {
    /// The element's name.
    pub fn name(&self) -> &str {
        &self.scheme.names[self.idx as usize]
    }
}

impl std::hash::Hash for Tables {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.names.hash(state);
    }
}

impl Lattice for Named {
    fn join(&self, other: &Self) -> Self {
        assert!(
            self.scheme == other.scheme,
            "elements of different named lattices"
        );
        let n = self.scheme.n();
        Named {
            idx: self.scheme.join[self.idx as usize * n + other.idx as usize],
            scheme: Arc::clone(&self.scheme),
        }
    }

    fn meet(&self, other: &Self) -> Self {
        assert!(
            self.scheme == other.scheme,
            "elements of different named lattices"
        );
        let n = self.scheme.n();
        Named {
            idx: self.scheme.meet[self.idx as usize * n + other.idx as usize],
            scheme: Arc::clone(&self.scheme),
        }
    }

    fn leq(&self, other: &Self) -> bool {
        assert!(
            self.scheme == other.scheme,
            "elements of different named lattices"
        );
        self.scheme.leq_at(self.idx, other.idx)
    }
}

impl fmt::Display for Named {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Why a declared order fails to be a lattice.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NamedError {
    /// No elements were declared.
    Empty,
    /// More than `u16::MAX` elements.
    TooLarge,
    /// A name appeared twice.
    DuplicateName(String),
    /// An edge referenced an undeclared name.
    UnknownName(String),
    /// The declared edges form a cycle through this element.
    Cycle(String),
    /// Two elements with no least upper bound (or no unique one).
    NoJoin(String, String),
    /// Two elements with no greatest lower bound (or no unique one).
    NoMeet(String, String),
}

impl fmt::Display for NamedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NamedError::Empty => write!(f, "a lattice needs at least one element"),
            NamedError::TooLarge => write!(f, "too many elements (max 65535)"),
            NamedError::DuplicateName(n) => write!(f, "duplicate element `{n}`"),
            NamedError::UnknownName(n) => write!(f, "edge references unknown element `{n}`"),
            NamedError::Cycle(n) => write!(f, "the order has a cycle through `{n}`"),
            NamedError::NoJoin(a, b) => {
                write!(f, "`{a}` and `{b}` have no unique least upper bound")
            }
            NamedError::NoMeet(a, b) => {
                write!(f, "`{a}` and `{b}` have no unique greatest lower bound")
            }
        }
    }
}

impl std::error::Error for NamedError {}

/// A finite lattice built from names and `below < above` edges.
#[derive(Clone, Debug)]
pub struct NamedScheme {
    tables: Arc<Tables>,
}

impl NamedScheme {
    /// Builds and validates the lattice.
    ///
    /// `edges` lists the order generators as `(below, above)` pairs (any
    /// generators, not necessarily a minimal Hasse diagram); the closure
    /// is computed here.
    ///
    /// # Examples
    ///
    /// ```
    /// use secflow_lattice::{Lattice, NamedScheme, Scheme};
    ///
    /// let s = NamedScheme::build(
    ///     &["public", "finance", "engineering", "board"],
    ///     &[
    ///         ("public", "finance"),
    ///         ("public", "engineering"),
    ///         ("finance", "board"),
    ///         ("engineering", "board"),
    ///     ],
    /// )
    /// .unwrap();
    /// let fin = s.elem("finance").unwrap();
    /// let eng = s.elem("engineering").unwrap();
    /// assert!(fin.incomparable(&eng));
    /// assert_eq!(fin.join(&eng).name(), "board");
    /// assert_eq!(fin.meet(&eng).name(), "public");
    /// ```
    pub fn build(names: &[&str], edges: &[(&str, &str)]) -> Result<Self, NamedError> {
        if names.is_empty() {
            return Err(NamedError::Empty);
        }
        if names.len() > u16::MAX as usize {
            return Err(NamedError::TooLarge);
        }
        let n = names.len();
        let mut index: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, name) in names.iter().enumerate() {
            if index.insert(name, i).is_some() {
                return Err(NamedError::DuplicateName(name.to_string()));
            }
        }
        // Reflexive closure + edges.
        let mut leq = vec![false; n * n];
        for i in 0..n {
            leq[i * n + i] = true;
        }
        for (below, above) in edges {
            let b = *index
                .get(below)
                .ok_or_else(|| NamedError::UnknownName(below.to_string()))?;
            let a = *index
                .get(above)
                .ok_or_else(|| NamedError::UnknownName(above.to_string()))?;
            leq[b * n + a] = true;
        }
        // Warshall transitive closure.
        for k in 0..n {
            for i in 0..n {
                if leq[i * n + k] {
                    for j in 0..n {
                        if leq[k * n + j] {
                            leq[i * n + j] = true;
                        }
                    }
                }
            }
        }
        // Antisymmetry (cycles collapse distinct names).
        for i in 0..n {
            for j in 0..n {
                if i != j && leq[i * n + j] && leq[j * n + i] {
                    return Err(NamedError::Cycle(names[i].to_string()));
                }
            }
        }
        // Unique join/meet for every pair.
        let mut join = vec![0u16; n * n];
        let mut meet = vec![0u16; n * n];
        for i in 0..n {
            for j in 0..n {
                let uppers: Vec<usize> = (0..n)
                    .filter(|&u| leq[i * n + u] && leq[j * n + u])
                    .collect();
                let least = uppers
                    .iter()
                    .copied()
                    .find(|&u| uppers.iter().all(|&v| leq[u * n + v]));
                match least {
                    Some(u) => join[i * n + j] = u as u16,
                    None => {
                        return Err(NamedError::NoJoin(
                            names[i].to_string(),
                            names[j].to_string(),
                        ))
                    }
                }
                let lowers: Vec<usize> = (0..n)
                    .filter(|&u| leq[u * n + i] && leq[u * n + j])
                    .collect();
                let greatest = lowers
                    .iter()
                    .copied()
                    .find(|&u| lowers.iter().all(|&v| leq[v * n + u]));
                match greatest {
                    Some(u) => meet[i * n + j] = u as u16,
                    None => {
                        return Err(NamedError::NoMeet(
                            names[i].to_string(),
                            names[j].to_string(),
                        ))
                    }
                }
            }
        }
        // Bottom and top exist iff all-pairs joins/meets exist (fold them).
        let bottom = (0..n).fold(0usize, |acc, i| meet[acc * n + i] as usize) as u16;
        let top = (0..n).fold(0usize, |acc, i| join[acc * n + i] as usize) as u16;
        Ok(NamedScheme {
            tables: Arc::new(Tables {
                names: names.iter().map(|s| s.to_string()).collect(),
                leq,
                join,
                meet,
                bottom,
                top,
            }),
        })
    }

    /// Looks an element up by name.
    pub fn elem(&self, name: &str) -> Option<Named> {
        let idx = self.tables.names.iter().position(|n| n == name)?;
        Some(Named {
            idx: idx as u16,
            scheme: Arc::clone(&self.tables),
        })
    }

    /// The element names, in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.tables.names.iter().map(String::as_str).collect()
    }
}

impl Scheme for NamedScheme {
    type Elem = Named;

    fn low(&self) -> Named {
        Named {
            idx: self.tables.bottom,
            scheme: Arc::clone(&self.tables),
        }
    }

    fn high(&self) -> Named {
        Named {
            idx: self.tables.top,
            scheme: Arc::clone(&self.tables),
        }
    }

    fn elements(&self) -> Vec<Named> {
        (0..self.tables.n() as u16)
            .map(|idx| Named {
                idx,
                scheme: Arc::clone(&self.tables),
            })
            .collect()
    }

    fn contains(&self, e: &Named) -> bool {
        e.scheme == self.tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    fn diamond() -> NamedScheme {
        NamedScheme::build(
            &["bot", "left", "right", "top"],
            &[
                ("bot", "left"),
                ("bot", "right"),
                ("left", "top"),
                ("right", "top"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn diamond_satisfies_lattice_laws() {
        laws::assert_lattice_laws(&diamond());
    }

    #[test]
    fn singleton_is_a_lattice() {
        let s = NamedScheme::build(&["only"], &[]).unwrap();
        laws::assert_lattice_laws(&s);
        assert_eq!(s.low(), s.high());
    }

    #[test]
    fn chain_from_edges() {
        let s = NamedScheme::build(
            &["u", "c", "s", "ts"],
            &[("u", "c"), ("c", "s"), ("s", "ts")],
        )
        .unwrap();
        laws::assert_lattice_laws(&s);
        assert_eq!(s.low().name(), "u");
        assert_eq!(s.high().name(), "ts");
        // Transitivity was derived: u ≤ ts without a direct edge.
        assert!(s.elem("u").unwrap().leq(&s.elem("ts").unwrap()));
    }

    #[test]
    fn diamond_joins_and_meets() {
        let s = diamond();
        let l = s.elem("left").unwrap();
        let r = s.elem("right").unwrap();
        assert!(l.incomparable(&r));
        assert_eq!(l.join(&r).name(), "top");
        assert_eq!(l.meet(&r).name(), "bot");
    }

    #[test]
    fn two_maximal_elements_fail() {
        // a, b both above bot, no top: a ⊕ b does not exist.
        let err =
            NamedScheme::build(&["bot", "a", "b"], &[("bot", "a"), ("bot", "b")]).unwrap_err();
        assert!(matches!(err, NamedError::NoJoin(_, _)));
    }

    #[test]
    fn m3_is_rejected_no_wait_its_a_lattice() {
        // M3 (diamond with three middle elements) IS a lattice; verify we
        // accept it and the laws hold.
        let s = NamedScheme::build(
            &["bot", "a", "b", "c", "top"],
            &[
                ("bot", "a"),
                ("bot", "b"),
                ("bot", "c"),
                ("a", "top"),
                ("b", "top"),
                ("c", "top"),
            ],
        )
        .unwrap();
        laws::assert_lattice_laws(&s);
    }

    #[test]
    fn non_unique_lub_is_rejected() {
        // a,b below both c,d; c,d below top: {a,b} has minimal upper
        // bounds {c, d}, neither least → not a lattice.
        let err = NamedScheme::build(
            &["bot", "a", "b", "c", "d", "top"],
            &[
                ("bot", "a"),
                ("bot", "b"),
                ("a", "c"),
                ("a", "d"),
                ("b", "c"),
                ("b", "d"),
                ("c", "top"),
                ("d", "top"),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, NamedError::NoJoin(_, _)), "{err}");
    }

    #[test]
    fn cycles_are_rejected() {
        let err = NamedScheme::build(&["a", "b"], &[("a", "b"), ("b", "a")]).unwrap_err();
        assert!(matches!(err, NamedError::Cycle(_)));
    }

    #[test]
    fn duplicate_and_unknown_names_are_rejected() {
        assert!(matches!(
            NamedScheme::build(&["a", "a"], &[]),
            Err(NamedError::DuplicateName(_))
        ));
        assert!(matches!(
            NamedScheme::build(&["a"], &[("a", "zz")]),
            Err(NamedError::UnknownName(_))
        ));
        assert!(matches!(
            NamedScheme::build(&[], &[]),
            Err(NamedError::Empty)
        ));
    }

    #[test]
    fn elements_of_different_schemes_do_not_mix() {
        let s1 = diamond();
        let s2 = NamedScheme::build(&["x", "y"], &[("x", "y")]).unwrap();
        assert!(!s1.contains(&s2.elem("x").unwrap()));
    }

    #[test]
    #[should_panic(expected = "different named lattices")]
    fn cross_scheme_join_panics() {
        let s1 = diamond();
        let s2 = NamedScheme::build(&["x", "y"], &[("x", "y")]).unwrap();
        let _ = s1.elem("top").unwrap().join(&s2.elem("x").unwrap());
    }

    #[test]
    fn usable_by_the_analyses() {
        // The org-chart lattice from the doc example drives joins/meets
        // exactly like the built-in schemes.
        let s = NamedScheme::build(
            &["public", "finance", "engineering", "board"],
            &[
                ("public", "finance"),
                ("public", "engineering"),
                ("finance", "board"),
                ("engineering", "board"),
            ],
        )
        .unwrap();
        laws::assert_lattice_laws(&s);
        let f = s.elem("finance").unwrap();
        let e = s.elem("engineering").unwrap();
        assert_eq!(f.join(&e), s.high());
    }
}
