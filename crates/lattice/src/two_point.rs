//! The two-point lattice `Low < High`.

use std::fmt;

use crate::traits::{Lattice, Scheme};

/// The classic two-point security lattice: `Low < High`.
///
/// This is the smallest non-trivial classification scheme and the one used
/// by every worked example in the paper (e.g. §5.2's
/// `sbind(x) = high, sbind(y) = low`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum TwoPoint {
    /// Public, unclassified information; the class of constants.
    Low,
    /// Secret information.
    High,
}

impl Lattice for TwoPoint {
    fn join(&self, other: &Self) -> Self {
        if *self == TwoPoint::High || *other == TwoPoint::High {
            TwoPoint::High
        } else {
            TwoPoint::Low
        }
    }

    fn meet(&self, other: &Self) -> Self {
        if *self == TwoPoint::Low || *other == TwoPoint::Low {
            TwoPoint::Low
        } else {
            TwoPoint::High
        }
    }

    fn leq(&self, other: &Self) -> bool {
        *self == TwoPoint::Low || *other == TwoPoint::High
    }
}

impl fmt::Display for TwoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwoPoint::Low => write!(f, "Low"),
            TwoPoint::High => write!(f, "High"),
        }
    }
}

/// The scheme object for [`TwoPoint`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TwoPointScheme;

impl Scheme for TwoPointScheme {
    type Elem = TwoPoint;

    fn low(&self) -> TwoPoint {
        TwoPoint::Low
    }

    fn high(&self) -> TwoPoint {
        TwoPoint::High
    }

    fn elements(&self) -> Vec<TwoPoint> {
        vec![TwoPoint::Low, TwoPoint::High]
    }

    fn contains(&self, _e: &TwoPoint) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    #[test]
    fn satisfies_lattice_laws() {
        laws::assert_lattice_laws(&TwoPointScheme);
    }

    #[test]
    fn order_is_low_below_high() {
        assert!(TwoPoint::Low.leq(&TwoPoint::High));
        assert!(!TwoPoint::High.leq(&TwoPoint::Low));
        assert!(TwoPoint::Low.leq(&TwoPoint::Low));
        assert!(TwoPoint::High.leq(&TwoPoint::High));
    }

    #[test]
    fn join_meet_tables() {
        use TwoPoint::*;
        assert_eq!(Low.join(&Low), Low);
        assert_eq!(Low.join(&High), High);
        assert_eq!(High.join(&Low), High);
        assert_eq!(High.join(&High), High);
        assert_eq!(Low.meet(&Low), Low);
        assert_eq!(Low.meet(&High), Low);
        assert_eq!(High.meet(&Low), Low);
        assert_eq!(High.meet(&High), High);
    }

    #[test]
    fn display_names() {
        assert_eq!(TwoPoint::Low.to_string(), "Low");
        assert_eq!(TwoPoint::High.to_string(), "High");
    }

    #[test]
    fn scheme_bounds() {
        let s = TwoPointScheme;
        assert_eq!(s.low(), TwoPoint::Low);
        assert_eq!(s.high(), TwoPoint::High);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
