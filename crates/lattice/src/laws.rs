//! Exhaustive verification of the complete-lattice laws for finite schemes.
//!
//! Definition 1 requires a classification scheme to be a *complete lattice*.
//! For the finite schemes in this crate, completeness is equivalent to being
//! a bounded lattice, so the checker verifies: partial-order laws for `leq`;
//! commutativity, associativity and idempotence of `join`/`meet`; the
//! absorption laws; consistency between the order and the operations; and
//! that `low`/`high` bound the carrier.
//!
//! The checker is `O(n^3)` in the carrier size and is meant for the small
//! instances used in tests; it returns the first violated law as a
//! human-readable [`LawViolation`].

use std::fmt;

use crate::traits::{Lattice, Scheme};

/// A violated lattice law, with the offending elements rendered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LawViolation {
    /// Which law failed (e.g. `"join-commutative"`).
    pub law: &'static str,
    /// Rendered description of the counterexample.
    pub detail: String,
}

impl fmt::Display for LawViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lattice law `{}` violated: {}", self.law, self.detail)
    }
}

impl std::error::Error for LawViolation {}

fn violation(law: &'static str, detail: String) -> Result<(), LawViolation> {
    Err(LawViolation { law, detail })
}

/// Checks every lattice law over the full carrier of `scheme`.
///
/// Returns the first violation found, or `Ok(())` when `scheme` is a lawful
/// bounded lattice.
pub fn check_lattice_laws<S: Scheme>(scheme: &S) -> Result<(), LawViolation> {
    let es = scheme.elements();
    if es.is_empty() {
        return violation("non-empty", "scheme has an empty carrier".to_string());
    }

    // Carrier membership of the distinguished elements.
    if !scheme.contains(&scheme.low()) {
        return violation(
            "low-in-carrier",
            format!("low {} not in carrier", scheme.low()),
        );
    }
    if !scheme.contains(&scheme.high()) {
        return violation(
            "high-in-carrier",
            format!("high {} not in carrier", scheme.high()),
        );
    }

    // Partial order laws.
    for a in &es {
        if !a.leq(a) {
            return violation("leq-reflexive", format!("{a} ≤ {a} fails"));
        }
    }
    for a in &es {
        for b in &es {
            if a.leq(b) && b.leq(a) && a != b {
                return violation(
                    "leq-antisymmetric",
                    format!("{a} ≤ {b} ≤ {a} but {a} ≠ {b}"),
                );
            }
        }
    }
    for a in &es {
        for b in &es {
            for c in &es {
                if a.leq(b) && b.leq(c) && !a.leq(c) {
                    return violation(
                        "leq-transitive",
                        format!("{a} ≤ {b} ≤ {c} but not {a} ≤ {c}"),
                    );
                }
            }
        }
    }

    // Operation laws.
    for a in &es {
        if &a.join(a) != a {
            return violation("join-idempotent", format!("{a} ⊕ {a} ≠ {a}"));
        }
        if &a.meet(a) != a {
            return violation("meet-idempotent", format!("{a} ⊗ {a} ≠ {a}"));
        }
    }
    for a in &es {
        for b in &es {
            if a.join(b) != b.join(a) {
                return violation("join-commutative", format!("{a} ⊕ {b} ≠ {b} ⊕ {a}"));
            }
            if a.meet(b) != b.meet(a) {
                return violation("meet-commutative", format!("{a} ⊗ {b} ≠ {b} ⊗ {a}"));
            }
            // Absorption.
            if &a.join(&a.meet(b)) != a {
                return violation("absorption", format!("{a} ⊕ ({a} ⊗ {b}) ≠ {a}"));
            }
            if &a.meet(&a.join(b)) != a {
                return violation("absorption", format!("{a} ⊗ ({a} ⊕ {b}) ≠ {a}"));
            }
            // Closure.
            if !scheme.contains(&a.join(b)) {
                return violation("join-closed", format!("{a} ⊕ {b} escapes the carrier"));
            }
            if !scheme.contains(&a.meet(b)) {
                return violation("meet-closed", format!("{a} ⊗ {b} escapes the carrier"));
            }
        }
    }
    for a in &es {
        for b in &es {
            for c in &es {
                if a.join(&b.join(c)) != a.join(b).join(c) {
                    return violation(
                        "join-associative",
                        format!("({a} ⊕ {b}) ⊕ {c} ≠ {a} ⊕ ({b} ⊕ {c})"),
                    );
                }
                if a.meet(&b.meet(c)) != a.meet(b).meet(c) {
                    return violation(
                        "meet-associative",
                        format!("({a} ⊗ {b}) ⊗ {c} ≠ {a} ⊗ ({b} ⊗ {c})"),
                    );
                }
            }
        }
    }

    // Order/operation consistency: a ≤ b iff a ⊕ b = b iff a ⊗ b = a.
    for a in &es {
        for b in &es {
            let by_leq = a.leq(b);
            let by_join = &a.join(b) == b;
            let by_meet = &a.meet(b) == a;
            if by_leq != by_join || by_leq != by_meet {
                return violation(
                    "order-consistency",
                    format!(
                        "{a} ≤ {b} is {by_leq}, but join-test gives {by_join} and meet-test {by_meet}"
                    ),
                );
            }
        }
    }

    // Least-upper-bound / greatest-lower-bound universality.
    for a in &es {
        for b in &es {
            let j = a.join(b);
            if !a.leq(&j) || !b.leq(&j) {
                return violation(
                    "join-upper-bound",
                    format!("{a} ⊕ {b} = {j} below an operand"),
                );
            }
            let m = a.meet(b);
            if !m.leq(a) || !m.leq(b) {
                return violation(
                    "meet-lower-bound",
                    format!("{a} ⊗ {b} = {m} above an operand"),
                );
            }
            for u in &es {
                if a.leq(u) && b.leq(u) && !j.leq(u) {
                    return violation(
                        "join-least",
                        format!("{u} bounds {a},{b} but not their join {j}"),
                    );
                }
                if u.leq(a) && u.leq(b) && !u.leq(&m) {
                    return violation(
                        "meet-greatest",
                        format!("{u} is below {a},{b} but not below their meet {m}"),
                    );
                }
            }
        }
    }

    // Bounds.
    let low = scheme.low();
    let high = scheme.high();
    for a in &es {
        if !low.leq(a) {
            return violation("low-is-bottom", format!("low {low} not below {a}"));
        }
        if !a.leq(&high) {
            return violation("high-is-top", format!("{a} not below high {high}"));
        }
    }

    Ok(())
}

/// Panics with a readable message if `scheme` violates any lattice law.
///
/// Convenience wrapper for tests.
pub fn assert_lattice_laws<S: Scheme>(scheme: &S) {
    if let Err(v) = check_lattice_laws(scheme) {
        panic!("{v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lattice, TwoPoint};
    use std::fmt;

    /// A deliberately broken "lattice" used to prove the checker catches
    /// violations: `leq` is reflexive only, but `join` claims `Bad0 ⊕ Bad1
    /// = Bad0`, which is not an upper bound of `Bad1`.
    #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
    enum Broken {
        B0,
        B1,
    }

    impl fmt::Display for Broken {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{self:?}")
        }
    }

    impl Lattice for Broken {
        fn join(&self, _other: &Self) -> Self {
            Broken::B0
        }
        fn meet(&self, _other: &Self) -> Self {
            Broken::B1
        }
        fn leq(&self, other: &Self) -> bool {
            self == other
        }
    }

    struct BrokenScheme;

    impl Scheme for BrokenScheme {
        type Elem = Broken;
        fn low(&self) -> Broken {
            Broken::B0
        }
        fn high(&self) -> Broken {
            Broken::B1
        }
        fn elements(&self) -> Vec<Broken> {
            vec![Broken::B0, Broken::B1]
        }
        fn contains(&self, _e: &Broken) -> bool {
            true
        }
    }

    #[test]
    fn checker_detects_broken_lattice() {
        let err = check_lattice_laws(&BrokenScheme).unwrap_err();
        // The first law that trips is idempotence of meet on B0.
        assert_eq!(err.law, "meet-idempotent");
        assert!(err.to_string().contains("meet-idempotent"));
    }

    #[test]
    fn checker_accepts_two_point() {
        assert!(check_lattice_laws(&crate::TwoPointScheme).is_ok());
    }

    #[test]
    #[should_panic(expected = "meet-idempotent")]
    fn assert_wrapper_panics_on_violation() {
        assert_lattice_laws(&BrokenScheme);
    }

    #[test]
    fn violation_display_mentions_elements() {
        let v = LawViolation {
            law: "demo",
            detail: format!("{} vs {}", TwoPoint::Low, TwoPoint::High),
        };
        let s = v.to_string();
        assert!(s.contains("demo") && s.contains("Low") && s.contains("High"));
    }
}
