//! The element and scheme traits shared by every classification lattice.

use std::fmt::{Debug, Display};
use std::hash::Hash;

/// An element of a security classification lattice.
///
/// Implementations must satisfy the complete-lattice laws on the carrier of
/// their [`Scheme`]: `join` and `meet` must be commutative, associative and
/// idempotent, must absorb each other, and must be consistent with `leq`
/// (`a.leq(b)` iff `a.join(b) == b` iff `a.meet(b) == a`). The
/// [`crate::laws`] module checks all of these exhaustively for finite
/// schemes.
///
/// The paper writes `⊕` for `join` (least upper bound) and `⊗` for `meet`
/// (greatest lower bound).
pub trait Lattice: Clone + Eq + Hash + Debug + Display {
    /// Least upper bound (`⊕`) of `self` and `other`.
    fn join(&self, other: &Self) -> Self;

    /// Greatest lower bound (`⊗`) of `self` and `other`.
    fn meet(&self, other: &Self) -> Self;

    /// The partial order: `true` iff `self ≤ other`.
    ///
    /// The default decides the order via `join`; implementations usually
    /// override this with a direct comparison.
    fn leq(&self, other: &Self) -> bool {
        &self.join(other) == other
    }

    /// `true` iff the two elements are incomparable (neither `≤` holds).
    fn incomparable(&self, other: &Self) -> bool {
        !self.leq(other) && !other.leq(self)
    }
}

/// A concrete, finite security classification scheme `(C, ≤)`.
///
/// A scheme fixes the carrier of a lattice whose element type may be shared
/// between differently-sized instances (e.g. [`crate::Linear`] chains of
/// different heights). It supplies the distinguished `low`/`high` elements
/// (Definition 1 calls them the minimum and maximum of `C`) and a finite
/// enumeration of the carrier for exhaustive law checking.
pub trait Scheme {
    /// The element type of this scheme.
    type Elem: Lattice;

    /// The minimum element of the scheme (the class of constants).
    fn low(&self) -> Self::Elem;

    /// The maximum element of the scheme.
    fn high(&self) -> Self::Elem;

    /// Every element of the (finite) carrier.
    ///
    /// Used by the law checker, exhaustive tests, and the binding-inference
    /// search. Large schemes (e.g. a 16-category powerset) may return a very
    /// long vector; callers that only need samples should truncate.
    fn elements(&self) -> Vec<Self::Elem>;

    /// `true` iff `e` is an element of this scheme's carrier.
    fn contains(&self, e: &Self::Elem) -> bool;

    /// Number of elements in the carrier.
    fn len(&self) -> usize {
        self.elements().len()
    }

    /// `true` iff the carrier is empty (never the case for a lawful scheme).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Least upper bound of an iterator of lattice elements.
///
/// Returns `None` for an empty iterator: the join over the empty set is the
/// bottom of the scheme, which the element type alone cannot name.
///
/// # Examples
///
/// ```
/// use secflow_lattice::{join_all, TwoPoint};
/// let elems = [TwoPoint::Low, TwoPoint::High, TwoPoint::Low];
/// assert_eq!(join_all(elems.iter().cloned()), Some(TwoPoint::High));
/// assert_eq!(join_all(std::iter::empty::<TwoPoint>()), None);
/// ```
pub fn join_all<L: Lattice>(iter: impl IntoIterator<Item = L>) -> Option<L> {
    iter.into_iter().reduce(|a, b| a.join(&b))
}

/// Greatest lower bound of an iterator of lattice elements.
///
/// Returns `None` for an empty iterator: the meet over the empty set is the
/// top of the scheme, which the element type alone cannot name.
pub fn meet_all<L: Lattice>(iter: impl IntoIterator<Item = L>) -> Option<L> {
    iter.into_iter().reduce(|a, b| a.meet(&b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwoPoint;

    #[test]
    fn join_all_of_empty_is_none() {
        assert_eq!(join_all(Vec::<TwoPoint>::new()), None);
    }

    #[test]
    fn meet_all_of_empty_is_none() {
        assert_eq!(meet_all(Vec::<TwoPoint>::new()), None);
    }

    #[test]
    fn join_all_is_least_upper_bound() {
        let xs = [TwoPoint::Low, TwoPoint::Low];
        assert_eq!(join_all(xs.iter().cloned()), Some(TwoPoint::Low));
        let ys = [TwoPoint::Low, TwoPoint::High];
        assert_eq!(join_all(ys.iter().cloned()), Some(TwoPoint::High));
    }

    #[test]
    fn meet_all_is_greatest_lower_bound() {
        let xs = [TwoPoint::High, TwoPoint::High];
        assert_eq!(meet_all(xs.iter().cloned()), Some(TwoPoint::High));
        let ys = [TwoPoint::Low, TwoPoint::High];
        assert_eq!(meet_all(ys.iter().cloned()), Some(TwoPoint::Low));
    }

    #[test]
    fn incomparable_is_false_on_chains() {
        assert!(!TwoPoint::Low.incomparable(&TwoPoint::High));
        assert!(!TwoPoint::High.incomparable(&TwoPoint::Low));
        assert!(!TwoPoint::Low.incomparable(&TwoPoint::Low));
    }
}
