//! Linear (totally ordered) classification chains `L0 < L1 < … < Ln`.

use std::fmt;

use crate::traits::{Lattice, Scheme};

/// An element of a linear classification chain.
///
/// `Linear(k)` denotes the `k`-th level of a chain such as
/// `Unclassified < Confidential < Secret < TopSecret`. The height of the
/// chain is fixed by the owning [`LinearScheme`]; elements themselves are
/// just ranks, so levels from chains of different heights compare by rank.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Linear(pub u32);

impl Lattice for Linear {
    fn join(&self, other: &Self) -> Self {
        Linear(self.0.max(other.0))
    }

    fn meet(&self, other: &Self) -> Self {
        Linear(self.0.min(other.0))
    }

    fn leq(&self, other: &Self) -> bool {
        self.0 <= other.0
    }
}

impl fmt::Display for Linear {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A linear classification scheme with `levels` elements `L0 … L(levels-1)`.
///
/// # Examples
///
/// ```
/// use secflow_lattice::{Lattice, Linear, LinearScheme, Scheme};
///
/// let s = LinearScheme::new(4).unwrap(); // U < C < S < TS
/// assert_eq!(s.low(), Linear(0));
/// assert_eq!(s.high(), Linear(3));
/// assert!(Linear(1).leq(&Linear(2)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinearScheme {
    levels: u32,
}

impl LinearScheme {
    /// Creates a chain of `levels` elements. Returns `None` when
    /// `levels == 0` (an empty carrier is not a lattice).
    pub fn new(levels: u32) -> Option<Self> {
        if levels == 0 {
            None
        } else {
            Some(LinearScheme { levels })
        }
    }

    /// Number of levels in the chain.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// The `k`-th level, or `None` when `k` is out of range.
    pub fn level(&self, k: u32) -> Option<Linear> {
        (k < self.levels).then_some(Linear(k))
    }
}

impl Scheme for LinearScheme {
    type Elem = Linear;

    fn low(&self) -> Linear {
        Linear(0)
    }

    fn high(&self) -> Linear {
        Linear(self.levels - 1)
    }

    fn elements(&self) -> Vec<Linear> {
        (0..self.levels).map(Linear).collect()
    }

    fn contains(&self, e: &Linear) -> bool {
        e.0 < self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    #[test]
    fn satisfies_lattice_laws_for_various_heights() {
        for levels in 1..=6 {
            laws::assert_lattice_laws(&LinearScheme::new(levels).unwrap());
        }
    }

    #[test]
    fn zero_levels_is_rejected() {
        assert!(LinearScheme::new(0).is_none());
    }

    #[test]
    fn chain_is_totally_ordered() {
        let s = LinearScheme::new(5).unwrap();
        let es = s.elements();
        for a in &es {
            for b in &es {
                assert!(a.leq(b) || b.leq(a), "{a} and {b} must be comparable");
            }
        }
    }

    #[test]
    fn join_is_max_meet_is_min() {
        assert_eq!(Linear(2).join(&Linear(4)), Linear(4));
        assert_eq!(Linear(2).meet(&Linear(4)), Linear(2));
        assert_eq!(Linear(3).join(&Linear(3)), Linear(3));
    }

    #[test]
    fn level_accessor_bounds_checks() {
        let s = LinearScheme::new(3).unwrap();
        assert_eq!(s.level(2), Some(Linear(2)));
        assert_eq!(s.level(3), None);
        assert!(s.contains(&Linear(2)));
        assert!(!s.contains(&Linear(3)));
    }

    #[test]
    fn display_uses_rank() {
        assert_eq!(Linear(7).to_string(), "L7");
    }
}
