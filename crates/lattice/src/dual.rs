//! Order duals: integrity lattices from confidentiality lattices.
//!
//! Inverting a lattice's order swaps `join` with `meet` and `low` with
//! `high`. This is how Biba-style *integrity* drops out of the machinery
//! for free: information may flow from high-integrity to low-integrity
//! but not upward, which is exactly confidentiality's rule over the dual
//! order. Certifying a program over `Dual<L>` therefore enforces the
//! integrity reading of the same classification scheme, with no change
//! to the Concurrent Flow Mechanism.

use std::fmt;

use crate::traits::{Lattice, Scheme};

/// An element of the dual lattice: the same carrier, the reversed order.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Dual<L>(pub L);

impl<L: Lattice> Lattice for Dual<L> {
    fn join(&self, other: &Self) -> Self {
        Dual(self.0.meet(&other.0))
    }

    fn meet(&self, other: &Self) -> Self {
        Dual(self.0.join(&other.0))
    }

    fn leq(&self, other: &Self) -> bool {
        other.0.leq(&self.0)
    }
}

impl<L: fmt::Display> fmt::Display for Dual<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dual({})", self.0)
    }
}

/// The dual scheme: wraps a base scheme with the reversed order.
///
/// # Examples
///
/// ```
/// use secflow_lattice::{Dual, DualScheme, Lattice, Scheme, TwoPoint, TwoPointScheme};
///
/// let s = DualScheme::new(TwoPointScheme);
/// // Integrity reading: High-integrity data is the dual `low` — sources
/// // everything; Low-integrity is the dual `high` — a sink.
/// assert_eq!(s.low(), Dual(TwoPoint::High));
/// assert_eq!(s.high(), Dual(TwoPoint::Low));
/// assert!(Dual(TwoPoint::High).leq(&Dual(TwoPoint::Low)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DualScheme<S> {
    base: S,
}

impl<S: Scheme> DualScheme<S> {
    /// Wraps `base` with the reversed order.
    pub fn new(base: S) -> Self {
        DualScheme { base }
    }

    /// The underlying scheme.
    pub fn base(&self) -> &S {
        &self.base
    }
}

impl<S: Scheme> Scheme for DualScheme<S> {
    type Elem = Dual<S::Elem>;

    fn low(&self) -> Self::Elem {
        Dual(self.base.high())
    }

    fn high(&self) -> Self::Elem {
        Dual(self.base.low())
    }

    fn elements(&self) -> Vec<Self::Elem> {
        self.base.elements().into_iter().map(Dual).collect()
    }

    fn contains(&self, e: &Self::Elem) -> bool {
        self.base.contains(&e.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{laws, CatSet, Linear, LinearScheme, PowersetScheme, TwoPoint, TwoPointScheme};

    #[test]
    fn duals_satisfy_lattice_laws() {
        laws::assert_lattice_laws(&DualScheme::new(TwoPointScheme));
        laws::assert_lattice_laws(&DualScheme::new(LinearScheme::new(4).unwrap()));
        laws::assert_lattice_laws(&DualScheme::new(PowersetScheme::new(3).unwrap()));
    }

    #[test]
    fn double_dual_restores_the_order() {
        let s = DualScheme::new(DualScheme::new(LinearScheme::new(4).unwrap()));
        laws::assert_lattice_laws(&s);
        assert_eq!(s.low(), Dual(Dual(Linear(0))));
        assert!(Dual(Dual(Linear(1))).leq(&Dual(Dual(Linear(2)))));
    }

    #[test]
    fn join_and_meet_swap() {
        let a = Dual(TwoPoint::Low);
        let b = Dual(TwoPoint::High);
        assert_eq!(a.join(&b), Dual(TwoPoint::Low));
        assert_eq!(a.meet(&b), Dual(TwoPoint::High));
    }

    #[test]
    fn powerset_dual_is_reverse_inclusion() {
        let a = Dual(CatSet(0b01));
        let ab = Dual(CatSet(0b11));
        // More categories = lower in the dual.
        assert!(ab.leq(&a));
        assert_eq!(a.join(&ab), ab.clone().join(&a));
        // Dual join is base meet: intersection.
        assert_eq!(a.join(&ab).0, CatSet(0b01));
    }

    #[test]
    fn display_marks_duality() {
        assert_eq!(Dual(TwoPoint::High).to_string(), "dual(High)");
    }
}
