//! The extended classification scheme of Definition 4: a fresh bottom `nil`.

use std::fmt;

use crate::traits::{Lattice, Scheme};

/// An element of the extended classification scheme `C ∪ {nil}`.
///
/// Definition 4 of the paper extends a scheme `(C', ≤')` with a new smallest
/// element `nil`, strictly below every element of `C'`. The Concurrent Flow
/// Mechanism uses `nil` as the value of `flow(S)` for statements that
/// produce no global flow; `nil` is the identity of `⊕` and satisfies
/// `nil ≤ x` for every `x`, so the Figure 2 arithmetic (e.g.
/// `flow(S1) ⊕ … ⊕ flow(Sn)` and vacuous `flow ≤ mod` checks) works out
/// without special cases.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Extended<L> {
    /// The new bottom element: "no global flow".
    Nil,
    /// An element of the underlying scheme `C'`.
    Elem(L),
}

impl<L> Extended<L> {
    /// `true` iff this is `nil`.
    pub fn is_nil(&self) -> bool {
        matches!(self, Extended::Nil)
    }

    /// Returns the underlying element, or `None` for `nil`.
    pub fn as_elem(&self) -> Option<&L> {
        match self {
            Extended::Nil => None,
            Extended::Elem(l) => Some(l),
        }
    }

    /// Returns the underlying element, or `fallback` for `nil`.
    ///
    /// The paper's checks of the form `flow(S) ≤ c` treat `nil` as trivially
    /// below everything; `elem_or(low)` is occasionally convenient when a
    /// base-lattice value is required.
    pub fn elem_or(self, fallback: L) -> L {
        match self {
            Extended::Nil => fallback,
            Extended::Elem(l) => l,
        }
    }
}

impl<L: Lattice> Lattice for Extended<L> {
    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (Extended::Nil, x) | (x, Extended::Nil) => x.clone(),
            (Extended::Elem(a), Extended::Elem(b)) => Extended::Elem(a.join(b)),
        }
    }

    fn meet(&self, other: &Self) -> Self {
        match (self, other) {
            (Extended::Nil, _) | (_, Extended::Nil) => Extended::Nil,
            (Extended::Elem(a), Extended::Elem(b)) => Extended::Elem(a.meet(b)),
        }
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (Extended::Nil, _) => true,
            (Extended::Elem(_), Extended::Nil) => false,
            (Extended::Elem(a), Extended::Elem(b)) => a.leq(b),
        }
    }
}

impl<L: fmt::Display> fmt::Display for Extended<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Extended::Nil => write!(f, "nil"),
            Extended::Elem(l) => write!(f, "{l}"),
        }
    }
}

impl<L> From<L> for Extended<L> {
    fn from(l: L) -> Self {
        Extended::Elem(l)
    }
}

/// The extended scheme wrapping a base scheme (Definition 4).
///
/// # Examples
///
/// ```
/// use secflow_lattice::{Extended, ExtendedScheme, Lattice, Scheme, TwoPoint, TwoPointScheme};
///
/// let s = ExtendedScheme::new(TwoPointScheme);
/// assert_eq!(s.low(), Extended::Nil);
/// assert!(Extended::Nil.leq(&Extended::Elem(TwoPoint::Low)));
/// // `nil` is the identity of join:
/// let x = Extended::Elem(TwoPoint::High);
/// assert_eq!(Extended::Nil.join(&x), x);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExtendedScheme<S> {
    base: S,
}

impl<S: Scheme> ExtendedScheme<S> {
    /// Wraps `base` with a fresh bottom `nil`.
    pub fn new(base: S) -> Self {
        ExtendedScheme { base }
    }

    /// The underlying scheme `(C', ≤')`.
    pub fn base(&self) -> &S {
        &self.base
    }
}

impl<S: Scheme> Scheme for ExtendedScheme<S> {
    type Elem = Extended<S::Elem>;

    fn low(&self) -> Self::Elem {
        Extended::Nil
    }

    fn high(&self) -> Self::Elem {
        Extended::Elem(self.base.high())
    }

    fn elements(&self) -> Vec<Self::Elem> {
        let mut out = vec![Extended::Nil];
        out.extend(self.base.elements().into_iter().map(Extended::Elem));
        out
    }

    fn contains(&self, e: &Self::Elem) -> bool {
        match e {
            Extended::Nil => true,
            Extended::Elem(l) => self.base.contains(l),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{laws, CatSet, LinearScheme, PowersetScheme, TwoPoint, TwoPointScheme};

    #[test]
    fn satisfies_lattice_laws() {
        laws::assert_lattice_laws(&ExtendedScheme::new(TwoPointScheme));
        laws::assert_lattice_laws(&ExtendedScheme::new(LinearScheme::new(4).unwrap()));
        laws::assert_lattice_laws(&ExtendedScheme::new(PowersetScheme::new(3).unwrap()));
    }

    #[test]
    fn nil_is_strictly_below_everything() {
        let s = ExtendedScheme::new(TwoPointScheme);
        for e in s.elements() {
            assert!(Extended::Nil.leq(&e));
            if !e.is_nil() {
                assert!(!e.leq(&Extended::Nil));
            }
        }
    }

    #[test]
    fn nil_is_join_identity_and_meet_zero() {
        let x: Extended<TwoPoint> = Extended::Elem(TwoPoint::High);
        assert_eq!(Extended::Nil.join(&x), x);
        assert_eq!(x.join(&Extended::Nil), x);
        assert_eq!(x.meet(&Extended::Nil), Extended::Nil);
    }

    #[test]
    fn base_order_is_preserved() {
        let a: Extended<CatSet> = Extended::Elem(CatSet(0b01));
        let b = Extended::Elem(CatSet(0b11));
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
    }

    #[test]
    fn accessors() {
        let x: Extended<TwoPoint> = Extended::Elem(TwoPoint::Low);
        assert!(!x.is_nil());
        assert_eq!(x.as_elem(), Some(&TwoPoint::Low));
        assert_eq!(Extended::<TwoPoint>::Nil.as_elem(), None);
        assert_eq!(
            Extended::<TwoPoint>::Nil.elem_or(TwoPoint::Low),
            TwoPoint::Low
        );
        assert_eq!(x.clone().elem_or(TwoPoint::High), TwoPoint::Low);
    }

    #[test]
    fn display_renders_nil() {
        assert_eq!(Extended::<TwoPoint>::Nil.to_string(), "nil");
        assert_eq!(Extended::Elem(TwoPoint::High).to_string(), "High");
    }

    #[test]
    fn from_lifts_base_elements() {
        let x: Extended<TwoPoint> = TwoPoint::High.into();
        assert_eq!(x, Extended::Elem(TwoPoint::High));
    }
}
