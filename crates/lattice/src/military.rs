//! Denning's military classification lattice: linear levels × category sets.

use std::fmt;

use crate::powerset::CatSet;
use crate::traits::{Lattice, Scheme};

/// An element of the military lattice: a clearance level plus a set of
/// compartment categories.
///
/// This is the lattice of Denning's *lattice model of secure information
/// flow* (CACM 1976), cited as reference \[2\] of the paper: classifications
/// such as `(Secret, {NUCLEAR, NATO})`. The order is component-wise:
/// `(l1, c1) ≤ (l2, c2)` iff `l1 ≤ l2` and `c1 ⊆ c2`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Military {
    /// Clearance level rank (0 = lowest).
    pub level: u32,
    /// Compartment categories.
    pub categories: CatSet,
}

impl Military {
    /// Creates a classification from a level rank and category set.
    pub fn new(level: u32, categories: CatSet) -> Self {
        Military { level, categories }
    }
}

impl Lattice for Military {
    fn join(&self, other: &Self) -> Self {
        Military {
            level: self.level.max(other.level),
            categories: self.categories.join(&other.categories),
        }
    }

    fn meet(&self, other: &Self) -> Self {
        Military {
            level: self.level.min(other.level),
            categories: self.categories.meet(&other.categories),
        }
    }

    fn leq(&self, other: &Self) -> bool {
        self.level <= other.level && self.categories.leq(&other.categories)
    }
}

impl fmt::Display for Military {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}:{}", self.level, self.categories)
    }
}

/// The military scheme: `levels` linear levels crossed with a powerset of
/// `n_categories` categories.
///
/// # Examples
///
/// ```
/// use secflow_lattice::{CatSet, Lattice, Military, MilitaryScheme, Scheme};
///
/// // Unclassified/Secret with two compartments.
/// let s = MilitaryScheme::new(2, 2).unwrap();
/// let a = Military::new(1, CatSet(0b01));
/// let b = Military::new(0, CatSet(0b10));
/// assert!(a.incomparable(&b));
/// assert_eq!(s.high(), Military::new(1, CatSet(0b11)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MilitaryScheme {
    levels: u32,
    n_categories: u32,
}

impl MilitaryScheme {
    /// Creates a military scheme. Returns `None` when `levels == 0` or
    /// `n_categories > 64`.
    pub fn new(levels: u32, n_categories: u32) -> Option<Self> {
        (levels > 0 && n_categories <= 64).then_some(MilitaryScheme {
            levels,
            n_categories,
        })
    }

    /// Number of clearance levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Number of compartment categories.
    pub fn n_categories(&self) -> u32 {
        self.n_categories
    }

    fn universe(&self) -> u64 {
        if self.n_categories == 64 {
            u64::MAX
        } else {
            (1u64 << self.n_categories) - 1
        }
    }
}

impl Scheme for MilitaryScheme {
    type Elem = Military;

    fn low(&self) -> Military {
        Military::new(0, CatSet::EMPTY)
    }

    fn high(&self) -> Military {
        Military::new(self.levels - 1, CatSet(self.universe()))
    }

    fn elements(&self) -> Vec<Military> {
        assert!(
            self.n_categories <= 16,
            "refusing to enumerate a 2^{}-category universe",
            self.n_categories
        );
        let mut out = Vec::new();
        for level in 0..self.levels {
            for mask in 0..(1u64 << self.n_categories) {
                out.push(Military::new(level, CatSet(mask)));
            }
        }
        out
    }

    fn contains(&self, e: &Military) -> bool {
        e.level < self.levels && e.categories.0 & !self.universe() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    #[test]
    fn satisfies_lattice_laws() {
        laws::assert_lattice_laws(&MilitaryScheme::new(3, 2).unwrap());
        laws::assert_lattice_laws(&MilitaryScheme::new(1, 3).unwrap());
        laws::assert_lattice_laws(&MilitaryScheme::new(4, 0).unwrap());
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(MilitaryScheme::new(0, 2).is_none());
        assert!(MilitaryScheme::new(2, 65).is_none());
    }

    #[test]
    fn dominance_requires_both_level_and_categories() {
        let secret_nuclear = Military::new(2, CatSet(0b01));
        let top_secret_empty = Military::new(3, CatSet::EMPTY);
        // Higher level but missing the category: incomparable.
        assert!(secret_nuclear.incomparable(&top_secret_empty));
        let top_secret_nuclear = Military::new(3, CatSet(0b01));
        assert!(secret_nuclear.leq(&top_secret_nuclear));
    }

    #[test]
    fn join_dominates_both_operands() {
        let a = Military::new(1, CatSet(0b01));
        let b = Military::new(2, CatSet(0b10));
        let j = a.join(&b);
        assert!(a.leq(&j) && b.leq(&j));
        assert_eq!(j, Military::new(2, CatSet(0b11)));
    }

    #[test]
    fn carrier_size() {
        let s = MilitaryScheme::new(3, 2).unwrap();
        assert_eq!(s.len(), 3 * 4);
    }

    #[test]
    fn display_combines_level_and_categories() {
        assert_eq!(Military::new(2, CatSet(0b1)).to_string(), "L2:{c0}");
    }
}
