//! Security classification lattices for information flow control.
//!
//! A *security classification scheme* (Definition 1 of the paper) is a
//! complete lattice `(C, ≤)`: a finite set of security classes with a
//! partial order, closed under least upper bounds (`⊕`, [`Lattice::join`])
//! and greatest lower bounds (`⊗`, [`Lattice::meet`]). Every program
//! variable is associated with an element of `C`; information may flow from
//! class `a` to class `b` only when `a ≤ b`.
//!
//! This crate provides:
//!
//! - the [`Lattice`] element trait and the [`Scheme`] trait describing a
//!   concrete finite classification scheme (its `low`/`high` elements and an
//!   enumeration of its carrier, used by the law checker and by exhaustive
//!   tests);
//! - the classification schemes used throughout the reproduction:
//!   [`TwoPoint`] (`Low < High`), [`Linear`] (a chain `L0 < … < Ln`),
//!   [`CatSet`] (powersets of compartment categories ordered by inclusion),
//!   [`Military`] (Denning's level × category lattice), and the generic
//!   [`Product`] of two schemes;
//! - the [`Extended`] construction of Definition 4: a scheme with a fresh
//!   bottom element `nil`, used by the Concurrent Flow Mechanism to denote
//!   "no global flow";
//! - a [`laws`] module that exhaustively verifies the complete-lattice laws
//!   for any finite [`Scheme`], backing the property-based test-suite.
//!
//! # Examples
//!
//! ```
//! use secflow_lattice::{Lattice, Scheme, TwoPoint, TwoPointScheme};
//!
//! let scheme = TwoPointScheme;
//! assert_eq!(scheme.low(), TwoPoint::Low);
//! assert!(TwoPoint::Low.leq(&TwoPoint::High));
//! assert_eq!(TwoPoint::Low.join(&TwoPoint::High), TwoPoint::High);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dual;
mod extended;
pub mod laws;
mod linear;
mod military;
mod named;
mod powerset;
mod product;
mod traits;
mod two_point;

pub use dual::{Dual, DualScheme};
pub use extended::{Extended, ExtendedScheme};
pub use linear::{Linear, LinearScheme};
pub use military::{Military, MilitaryScheme};
pub use named::{Named, NamedError, NamedScheme};
pub use powerset::{CatSet, PowersetScheme};
pub use product::{Product, ProductScheme};
pub use traits::{join_all, meet_all, Lattice, Scheme};
pub use two_point::{TwoPoint, TwoPointScheme};
