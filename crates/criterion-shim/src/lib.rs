//! A std-only stand-in for the subset of the `criterion` API this
//! workspace's benches use, so `cargo bench` works without network
//! access to crates.io.
//!
//! The statistics are deliberately simple — median and min/max over a
//! fixed number of wall-clock samples, with an adaptive inner iteration
//! count targeting ~10ms per sample — but the reported shape (time per
//! element across a size sweep) is what EXPERIMENTS.md records, and the
//! API is call-compatible with the real crate for the surface in use:
//! `Criterion`, `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, `criterion_group!`, `criterion_main!`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a group's per-sample work is normalised when reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Report time per logical element (e.g. statements certified).
    Elements(u64),
    /// Report time per input byte.
    Bytes(u64),
}

/// Identifies one benchmark inside a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `group/function/parameter`-style id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Id carrying only the swept parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Drives one benchmark body: `b.iter(|| work())`.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            durations: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Times `f`, first calibrating an inner iteration count so each
    /// sample spans at least ~10ms of wall clock.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let target = Duration::from_millis(10);
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= target || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 2).max(1);
        }
        self.iters_per_sample = iters;
        self.durations = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed() / iters as u32
            })
            .collect();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(label: &str, samples: &mut [Duration], iters: u64, throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    let mut line = format!(
        "{label:<48} median {:>10}  [{} .. {}]  ({iters} iters/sample)",
        fmt_duration(median),
        fmt_duration(lo),
        fmt_duration(hi),
    );
    match throughput {
        Some(Throughput::Elements(n)) if n > 0 => {
            line.push_str(&format!(
                "  {:>10}/elem",
                fmt_duration(median / n.min(u32::MAX as u64) as u32)
            ));
        }
        Some(Throughput::Bytes(n)) if n > 0 => {
            let gib_s = n as f64 / median.as_secs_f64() / (1 << 30) as f64;
            line.push_str(&format!("  {gib_s:.3} GiB/s"));
        }
        _ => {}
    }
    println!("{line}");
}

/// A named collection of related benchmarks sharing throughput and
/// sample-size settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-sample normalisation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the number of wall-clock samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        let label = format!("{}/{}", self.name, id.label);
        report(
            &label,
            &mut b.durations,
            b.iters_per_sample,
            self.throughput,
        );
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        let label = format!("{}/{}", self.name, id.label);
        report(
            &label,
            &mut b.durations,
            b.iters_per_sample,
            self.throughput,
        );
        self
    }

    /// Ends the group (printing happens eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Top-level harness handle passed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, &mut b.durations, b.iters_per_sample, None);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's two
/// macro forms (positional and `name/config/targets`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
