//! Flow proofs: Theorem 1's constructive prover and the §5.2 gap.
//!
//! Prints a machine-checked, completely invariant flow proof for a
//! certified concurrent program (Theorem 1), then reproduces §5.2: a
//! program the flow logic proves safe but CFM cannot certify.
//!
//! Run with: `cargo run --example flow_proofs`

use secflow::cfm::{certify, StaticBinding};
use secflow::lang::parse;
use secflow::lattice::{Extended, TwoPoint, TwoPointScheme};
use secflow::logic::examples::{relative_strength_program, relative_strength_proof};
use secflow::logic::{check_proof, is_completely_invariant, policy_assertion, prove};

fn main() {
    // ---- Theorem 1 on the §2.2 synchronization example ----------------
    let source = "\
var x, y : integer; sem : semaphore;
cobegin
  if x = 0 then signal(sem)
||
  begin wait(sem); y := 0 end
coend";
    let program = parse(source).expect("well-formed");

    // Certify with the whole chain High — the binding §4.3-style
    // reasoning forces.
    let binding = StaticBinding::constant(&program.symbols, &TwoPointScheme, TwoPoint::High);
    assert!(certify(&program, &binding).certified());

    println!("== Theorem 1: completely invariant proof ==");
    println!("{source}\n");
    let proof =
        prove(&program, &binding, Extended::Nil, Extended::Nil).expect("certified => proof exists");
    check_proof(&program.body, &proof).expect("independent checker agrees");
    let i = policy_assertion(&program, &binding);
    assert!(is_completely_invariant(&proof, &i).unwrap());
    println!("{proof}");
    println!(
        "({} proof nodes, checked and completely invariant)\n",
        proof.size()
    );

    // ---- §5.2: the flow logic is strictly stronger ----------------------
    println!("== §5.2 relative strength ==");
    let (prog52, sbind52) = relative_strength_program();
    println!("begin x := 0; y := x end   with sbind(x)=High, sbind(y)=Low\n");

    let report = certify(&prog52, &sbind52);
    println!(
        "CFM: {}",
        if report.certified() {
            "certified"
        } else {
            "REJECTED"
        }
    );
    assert!(!report.certified());
    for v in &report.violations {
        println!("  {v}");
    }

    let proof52 = relative_strength_proof(&prog52);
    check_proof(&prog52.body, &proof52).expect("the paper's proof is valid");
    println!("\nyet the paper's flow proof checks:");
    println!("{proof52}");

    let i52 = policy_assertion(&prog52, &sbind52);
    assert!(
        !is_completely_invariant(&proof52, &i52).unwrap(),
        "…because it strengthens the policy assertion mid-proof (x̲ ≤ Low), \
         it falls outside Definition 7 — consistent with Theorem 2"
    );
    println!(
        "the proof is NOT completely invariant (it strengthens x̲ to Low),\n\
         which is exactly why CFM cannot certify the program (Theorem 2)."
    );
}
