//! Proofs as artifacts: construct, serialize, exchange, re-check, and
//! catch tampering.
//!
//! Theorem 1 makes certification *constructive*: a certified program has
//! a completely invariant flow proof, and this workspace can hand that
//! proof to you as a plain-text file. Anyone can re-check it without
//! trusting the prover — the checker re-derives every Figure 1 rule
//! instance and side condition.
//!
//! Run with: `cargo run --example proof_artifacts`

use secflow::cfm::StaticBinding;
use secflow::lang::parse;
use secflow::lattice::{Extended, TwoPoint, TwoPointScheme};
use secflow::logic::{check_proof, parse_proof, prove, write_proof};

fn show(l: &TwoPoint) -> String {
    match l {
        TwoPoint::Low => "low".into(),
        TwoPoint::High => "high".into(),
    }
}

fn read(s: &str) -> Option<TwoPoint> {
    match s {
        "low" => Some(TwoPoint::Low),
        "high" => Some(TwoPoint::High),
        _ => None,
    }
}

fn main() {
    let source = "\
var balance, audit_log : integer; ledger_lock : semaphore initially(1);
cobegin
  begin wait(ledger_lock); balance := balance + 100; signal(ledger_lock) end
||
  begin wait(ledger_lock); audit_log := balance; signal(ledger_lock) end
coend";
    let program = parse(source).expect("well-formed");
    println!("== program ==\n{source}\n");

    // Classify everything High (the ledger is sensitive end to end).
    let binding = StaticBinding::constant(&program.symbols, &TwoPointScheme, TwoPoint::High);

    // 1. Construct the Theorem-1 proof and have the checker vet it.
    let proof = prove(&program, &binding, Extended::Nil, Extended::Nil)
        .expect("certified, so a completely invariant proof exists");
    check_proof(&program.body, &proof).expect("the independent checker agrees");
    println!("== constructed proof: {} nodes, checked ==\n", proof.size());

    // 2. Serialize it to the textual artifact format.
    let text = write_proof(&proof, &program.symbols, &show);
    println!("== artifact (.sfp), first 12 lines ==");
    for line in text.lines().take(12) {
        println!("{line}");
    }
    println!("…\n");

    // 3. A recipient re-parses and re-checks it from scratch.
    let received = parse_proof(&text, &program.symbols, &read).expect("artifact parses");
    assert_eq!(received, proof, "round trip is exact");
    check_proof(&program.body, &received).expect("artifact re-checks");
    println!(
        "== recipient: parsed and re-checked, {} nodes ==\n",
        received.size()
    );

    // 4. Tampering does not survive: weaken one bound and the checker
    //    pinpoints the broken rule.
    let tampered_text = text.replacen("high", "low", 1);
    let tampered = parse_proof(&tampered_text, &program.symbols, &read).expect("still parses");
    let err = check_proof(&program.body, &tampered)
        .expect_err("…but no longer constitutes a valid derivation");
    println!("== tampered artifact rejected ==\n{err}");
}
