//! A multi-level-security pipeline over Denning's military lattice.
//!
//! Three concurrent stages (collector → analyst → publisher) hand data
//! down a semaphore-coordinated pipeline. Classifications come from the
//! military lattice (clearance level × compartment categories), showing
//! that every analysis in the workspace is generic over the
//! classification scheme — not just Low/High.
//!
//! Run with: `cargo run --example mls_pipeline`

use secflow::cfm::{certify, infer_binding, Policy};
use secflow::lang::parse;
use secflow::lattice::{CatSet, Lattice, Military, MilitaryScheme, Scheme};
use secflow::runtime::{run, Machine, RoundRobin};

fn main() {
    // Levels: 0 = Unclassified, 1 = Secret, 2 = TopSecret.
    // Categories: c0 = NUCLEAR, c1 = NATO.
    let scheme = MilitaryScheme::new(3, 2).expect("valid scheme");
    let u = Military::new(0, CatSet::EMPTY);
    let s_nuc = Military::new(1, CatSet(0b01));
    let ts_nuc = Military::new(2, CatSet(0b01));
    let s_nato = Military::new(1, CatSet(0b10));

    let source = "\
var sensor, report, bulletin, audit : integer;
    collected, analyzed : semaphore;
cobegin
  begin report := sensor * 10; signal(collected) end
||
  begin wait(collected); bulletin := report + 1; signal(analyzed) end
||
  begin wait(analyzed); audit := audit + 1 end
coend";
    let program = parse(source).expect("well-formed");

    // The pipeline actually runs.
    let mut machine = Machine::with_inputs(&program, &[(program.var("sensor"), 4)]);
    assert!(run(&mut machine, &mut RoundRobin::new(), 10_000).terminated());
    println!(
        "pipeline run: sensor=4 -> report={} -> bulletin={} (audit={})",
        machine.get(program.var("report")),
        machine.get(program.var("bulletin")),
        machine.get(program.var("audit")),
    );

    // A policy that respects the chain: sensor S/NUCLEAR, report and the
    // handoff semaphores S/NUCLEAR, bulletin TS/NUCLEAR, audit TS/NUCLEAR.
    let good = Policy::new(scheme)
        .classify("sensor", s_nuc)
        .classify("report", s_nuc)
        .classify("collected", s_nuc)
        .classify("analyzed", ts_nuc)
        .classify("bulletin", ts_nuc)
        .classify("audit", ts_nuc);
    let report = good.check(&program).expect("policy binds");
    println!(
        "\nupward-flowing MLS policy: {}",
        if report.certified() {
            "certified"
        } else {
            "REJECTED"
        }
    );
    assert!(report.certified());

    // Publishing the bulletin at NATO (incomparable compartment) must
    // fail: NUCLEAR data cannot flow into a NATO-only container.
    let bad = Policy::new(scheme)
        .classify("sensor", s_nuc)
        .classify("bulletin", s_nato)
        .default_class(scheme.high());
    let report = bad.check(&program).expect("policy binds");
    println!(
        "NATO-only bulletin policy: {}",
        if report.certified() {
            "certified"
        } else {
            "REJECTED"
        }
    );
    assert!(!report.certified());
    print!("{}", report.render(source));

    // Inference: pin the sensor and let the solver place everything else
    // as low as possible.
    println!("\nleast binding with sensor pinned Secret/NUCLEAR:");
    let least =
        infer_binding(&program, &scheme, [(program.var("sensor"), s_nuc)]).expect("satisfiable");
    print!("{}", least.render(&program));
    assert!(certify(&program, &least).certified());
    // The untouched audit counter needn't be NUCLEAR at all…
    assert_eq!(*least.class(program.var("audit")), u);
    // …but the bulletin must dominate the sensor.
    assert!(s_nuc.leq(least.class(program.var("bulletin"))));
}
