//! The leak matrix (experiment E10): CFM vs a dynamic taint monitor vs
//! ground-truth interference, across a suite of small programs.
//!
//! For each program with secret `h` and observer variable `l`:
//! - **ground truth**: exhaustive schedule exploration — do the
//!   observable outcomes depend on `h`?
//! - **CFM**: does certification (h=High, rest Low) pass?
//! - **monitor**: per secret value, does the run's final label mark `l`
//!   as polluted? A purely dynamic monitor protects a *run*, so a leak is
//!   only caught when the run that reveals the secret is itself flagged —
//!   the per-run columns expose the runs it leaves naked.
//!
//! Expected shape: CFM rejects every interfering program (soundness,
//! asserted below). The monitor's blind spots are per-run: the untaken
//! branch (`h=1` reveals the secret but executes nothing tainted), the
//! never-entered loop, and synchronization (no run is ever flagged).
//! CFM's only false alarm is the §5.2 dead store.
//!
//! Run with: `cargo run --example leak_audit`

use secflow::cfm::{certify, StaticBinding};
use secflow::lang::{parse, Program, VarId};
use secflow::lattice::{TwoPoint, TwoPointScheme};
use secflow::runtime::{check_binary_secret, ExploreLimits, Machine, RoundRobin, TaintMonitor};

struct Case {
    name: &'static str,
    source: &'static str,
}

const CASES: &[Case] = &[
    Case {
        name: "direct assignment",
        source: "var h, l : integer; l := h",
    },
    Case {
        name: "implicit (both arms)",
        source: "var h, l : integer; if h = 0 then l := 1 else l := 2",
    },
    Case {
        name: "implicit (untaken arm)",
        source: "var h, l : integer; if h = 0 then l := 1",
    },
    Case {
        name: "loop-carried count",
        source: "var h, l : integer; while h > 0 do begin l := l + 1; h := h - 1 end",
    },
    Case {
        name: "synchronization (Fig 3 core)",
        source: "var h, l : integer; sem : semaphore;
                 cobegin if h = 0 then signal(sem) || begin wait(sem); l := 0 end coend",
    },
    Case {
        name: "no flow (constant)",
        source: "var h, l : integer; l := 7",
    },
    Case {
        name: "dead store (5.2-style)",
        source: "var h, l : integer; begin h := 0; l := h end",
    },
];

/// One monitored run with `h = secret`: is `l` flagged at the end?
fn monitor_run_flags(program: &Program, h: VarId, l: VarId, secret: i64) -> &'static str {
    let labels: Vec<TwoPoint> = program
        .symbols
        .iter()
        .map(|(id, _)| {
            if id == h {
                TwoPoint::High
            } else {
                TwoPoint::Low
            }
        })
        .collect();
    let machine = Machine::with_inputs(program, &[(h, secret)]);
    let mut mon = TaintMonitor::new(machine, labels, TwoPoint::Low);
    mon.run(&mut RoundRobin::new(), 50_000);
    if mon.labels()[l.index()] == TwoPoint::High {
        "flags"
    } else {
        "silent"
    }
}

fn main() {
    println!(
        "{:<28} {:>12} {:>11} {:>14} {:>14}",
        "program", "interferes?", "CFM", "monitor(h=0)", "monitor(h=1)"
    );
    println!("{}", "-".repeat(84));
    for case in CASES {
        let program = parse(case.source).expect(case.name);
        let h = program.var("h");
        let l = program.var("l");

        // Ground truth.
        let ni = check_binary_secret(&program, h, &[l], ExploreLimits::default());

        // CFM verdict.
        let binding =
            StaticBinding::uniform(&program.symbols, &TwoPointScheme).with(h, TwoPoint::High);
        let cfm_rejects = !certify(&program, &binding).certified();

        println!(
            "{:<28} {:>12} {:>11} {:>14} {:>14}",
            case.name,
            if ni.interferes { "yes" } else { "no" },
            if cfm_rejects { "rejects" } else { "certifies" },
            monitor_run_flags(&program, h, l, 0),
            monitor_run_flags(&program, h, l, 1),
        );

        // Soundness: CFM never certifies an interfering program.
        if ni.interferes {
            assert!(cfm_rejects, "{}: CFM missed real interference!", case.name);
        }
    }
    println!("{}", "-".repeat(84));
    println!("CFM rejected every interfering program (soundness held), once,");
    println!("at compile time. The monitor protects individual runs: the");
    println!("untaken-arm leak is naked on the h=1 run, the loop-count leak");
    println!("on the h=0 run, and the synchronization channel on every run.");
    println!("CFM's rejection of the dead store is the §5.2 conservatism.");
}
