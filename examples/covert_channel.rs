//! Figure 3 end to end: the synchronization covert channel.
//!
//! Reproduces every claim §4.3 makes about the figure:
//! 1. the program transmits `x` to `y` by ordering process execution;
//! 2. it cannot deadlock, and the semaphores return to their initial
//!    values (verified by exhaustive interleaving exploration);
//! 3. CFM rejects it when `x` is High and `y` Low, via exactly the three
//!    hand-derived conditions, while the 1977 baseline is blind to the
//!    global ones;
//! 4. looping the processes transmits arbitrarily many bits.
//!
//! Run with: `cargo run --example covert_channel`

use secflow::cfm::{certify, constraints, denning_certify, CheckRule};
use secflow::runtime::{explore, run, ExploreLimits, Machine, RandomSched};
use secflow::workload::{
    decode_transmitted, fig3_baseline_gap_binding, fig3_high_x_binding, fig3_program, kbit_channel,
    FIG3_SOURCE,
};

fn main() {
    let program = fig3_program();
    println!("== Figure 3 ==\n{FIG3_SOURCE}");

    // (1) The channel works under every schedule we can throw at it.
    println!("== transmission across random schedules ==");
    for x in [0, 1, 7] {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..25 {
            let mut m = Machine::with_inputs(&program, &[(program.var("x"), x)]);
            assert!(run(&mut m, &mut RandomSched::new(seed), 100_000).terminated());
            seen.insert(m.get(program.var("y")));
        }
        println!("x = {x}: y is always {seen:?}");
        assert_eq!(seen.len(), 1, "the semaphores force one outcome");
    }

    // (2) Exhaustive exploration: no deadlock, semaphores restored.
    println!("\n== exhaustive interleaving exploration ==");
    for x in [0, 1] {
        let r = explore(&program, &[(program.var("x"), x)], ExploreLimits::default());
        println!(
            "x = {x}: {} states, {} outcomes, {} deadlocks, truncated = {}",
            r.states,
            r.outcomes.len(),
            r.deadlocks,
            r.truncated
        );
        assert_eq!(r.deadlocks, 0, "§4.3: the program cannot deadlock");
        assert!(!r.truncated);
        for store in &r.outcomes {
            for sem in ["modify", "modified", "read", "done"] {
                assert_eq!(store[program.var(sem).index()], 0, "semaphores restored");
            }
        }
    }

    // (3) The three §4.3 certification conditions, found automatically.
    println!("\n== the §4.3 conditions as discovered constraints ==");
    let cs = constraints(&program);
    for (from, to) in [("x", "modify"), ("modify", "m"), ("m", "y")] {
        let present = cs
            .iter()
            .any(|c| c.from == program.var(from) && c.to == program.var(to));
        println!(
            "sbind({from}) <= sbind({to})   [{}]",
            if present { "found" } else { "MISSING" }
        );
        assert!(present);
    }

    // CFM vs the Denning baseline.
    println!("\n== CFM vs the 1977 baseline ==");
    let high_x = fig3_high_x_binding(&program);
    println!(
        "x=High, rest Low      : CFM {}  baseline {}",
        verdict(certify(&program, &high_x).certified()),
        verdict(denning_certify(&program, &high_x).certified()),
    );
    let gap = fig3_baseline_gap_binding(&program);
    let cfm_report = certify(&program, &gap);
    println!(
        "x+semaphores High     : CFM {}  baseline {}",
        verdict(cfm_report.certified()),
        verdict(denning_certify(&program, &gap).certified()),
    );
    assert!(!cfm_report.certified());
    assert!(denning_certify(&program, &gap).certified());
    assert!(cfm_report
        .violations
        .iter()
        .all(|v| v.rule == CheckRule::SeqGlobal));
    println!("CFM's objections (all global composition flows):");
    print!("{}", cfm_report.render(FIG3_SOURCE));

    // (4) The k-bit generalization.
    println!("\n== k-bit looped channel ==");
    let k = 6;
    let chan = kbit_channel(k);
    for x in [0, 13, 42, 63] {
        let mut m = Machine::with_inputs(&chan, &[(chan.var("x"), x)]);
        assert!(run(&mut m, &mut RandomSched::new(99), 1_000_000).terminated());
        let y = m.get(chan.var("y"));
        let decoded = decode_transmitted(y, k);
        println!("x = {x:2} -> y = {y:2} -> decoded {decoded:2}");
        assert_eq!(decoded, x);
    }
    println!("\nall Figure 3 claims verified");
}

fn verdict(certified: bool) -> &'static str {
    if certified {
        "certifies"
    } else {
        "REJECTS  "
    }
}
