//! Quickstart: parse a parallel program, certify it with CFM, explain a
//! rejection, and repair the binding automatically.
//!
//! Run with: `cargo run --example quickstart`

use secflow::cfm::{certify, infer_binding, StaticBinding};
use secflow::lang::parse;
use secflow::lattice::{TwoPoint, TwoPointScheme};

fn main() {
    // A producer/consumer pair: `secret` influences whether the producer
    // signals, and the consumer writes `public` after waiting — the
    // synchronization channel of paper §2.2.
    let source = "\
var secret, public : integer; ready : semaphore;
cobegin
  if secret = 0 then signal(ready)
||
  begin wait(ready); public := 0 end
coend";
    let program = parse(source).expect("well-formed program");

    // Step 1: declare the policy as a static binding (Definition 3).
    let binding = StaticBinding::uniform(&program.symbols, &TwoPointScheme)
        .with(program.var("secret"), TwoPoint::High);

    // Step 2: run the Concurrent Flow Mechanism (Figure 2).
    let report = certify(&program, &binding);
    println!("== certification under secret=High, everything else Low ==");
    print!("{}", report.render(source));
    assert!(!report.certified(), "the covert channel must be rejected");

    // Step 3: ask for the least binding that certifies, keeping the
    // secret pinned High.
    println!("\n== least certifying binding with secret pinned High ==");
    let repaired = infer_binding(
        &program,
        &TwoPointScheme,
        [(program.var("secret"), TwoPoint::High)],
    )
    .expect("satisfiable: raise everything downstream");
    print!("{}", repaired.render(&program));
    assert!(certify(&program, &repaired).certified());

    // Step 4: and confirm that pinning the public output Low as well is
    // impossible — the program genuinely moves information.
    println!("\n== pinning public=Low as well ==");
    let unsat = infer_binding(
        &program,
        &TwoPointScheme,
        [
            (program.var("secret"), TwoPoint::High),
            (program.var("public"), TwoPoint::Low),
        ],
    )
    .expect_err("no binding can certify a real flow away");
    println!(
        "unsatisfiable: `{}` pinned at {} but the program forces {}",
        program.symbols.name(unsat.var),
        unsat.pinned,
        unsat.required
    );
    println!("witness flow chain: {}", unsat.render_path(&program));
}
